"""Versioned request/response schema for the public synthesis API.

These dataclasses are the *wire format*: every frontend (CLI, benchmark
runner, examples, the HTTP service in :mod:`repro.server`) speaks
exactly these shapes.
Three invariants the tests pin down:

* **Validation on construction.**  A malformed request raises
  :class:`~repro.errors.ValidationError` in ``__post_init__`` — there is
  no half-built request object to pass around.
* **Canonical JSON round-trip.**  ``X.from_json(x.to_json())`` is exact,
  and ``to_json`` is canonical (sorted keys, compact separators), so the
  serialized form is stable enough to hash, diff and cache.
* **One schema.**  Attempt and assignment payloads are the shared wire
  shapes from :mod:`repro.engine.wire` — the same dicts the result cache
  stores and workers return, so the facade introduces no second format.

Wire envelopes carry ``{"api": API_VERSION, "kind": "..."}``; a reader
rejects kinds it does not understand and versions newer than its own.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Union

from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable
from repro.core.janus import JanusOptions, SynthesisResult
from repro.core.target import TargetSpec
from repro.engine.wire import (
    _tt_from_hex,
    _tt_hex,
    assignment_from_wire,
    assignment_to_wire,
    attempt_from_wire,
    attempt_to_wire,
    solver_config_from_wire,
    solver_config_to_wire,
)
from repro.errors import SolverError, ValidationError
from repro.sat.solver import SolverConfig

__all__ = [
    "API_VERSION",
    "RequestOptions",
    "SynthesisRequest",
    "SynthesisResponse",
    "BatchRequest",
    "BatchResponse",
]

API_VERSION = 1

_KNOWN_UB_METHODS = ("dp", "ps", "dps", "ips", "idps", "ds")
_KNOWN_SIDES = ("primal", "dual")

TargetLike = Union[str, Sop, TruthTable, TargetSpec]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationError(message)


def _canonical(wire: dict) -> str:
    return json.dumps(wire, sort_keys=True, separators=(",", ":"))


def _is_hex(text: str) -> bool:
    return all(c in "0123456789abcdef" for c in text)


def _check_envelope(wire: Any, kind: str) -> dict:
    _require(isinstance(wire, dict), f"{kind}: wire form must be an object")
    _require(
        wire.get("kind") == kind,
        f"expected kind {kind!r}, got {wire.get('kind')!r}",
    )
    version = wire.get("api")
    _require(
        isinstance(version, int) and 1 <= version <= API_VERSION,
        f"{kind}: unsupported api version {version!r} "
        f"(this library speaks <= {API_VERSION})",
    )
    return wire


# ------------------------------------------------------------------ options
@dataclass(frozen=True)
class RequestOptions:
    """The serializable subset of :class:`JanusOptions` a request may set.

    Field names follow the wire format, not the internal dataclass
    (``time_limit`` <-> ``lm_time_limit``, ``trim`` <->
    ``trim_solutions``, ``exact`` <-> ``exact_minimization``); the
    mapping lives in :meth:`to_janus_options` / :meth:`from_janus_options`
    and is round-trip exact for every field listed here.
    """

    max_conflicts: int = 60_000
    time_limit: Optional[float] = None
    ub_methods: tuple[str, ...] = ("dp", "ps", "dps", "ips", "idps", "ds")
    sides: tuple[str, ...] = ("primal", "dual")
    ds_depth: int = 1
    verify: bool = True
    trim: bool = True
    max_lattice_products: int = 20_000
    exact: bool = True
    # CDCL tuning; None means "default config" and is the canonical form
    # of the default (an explicit default is normalized to None so the
    # two spellings stay wire- and equality-identical).
    solver_config: Optional[SolverConfig] = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.max_conflicts, int) and self.max_conflicts >= 1,
            f"max_conflicts must be a positive integer, got "
            f"{self.max_conflicts!r}",
        )
        _require(
            self.time_limit is None
            or (
                isinstance(self.time_limit, (int, float))
                and self.time_limit > 0
            ),
            f"time_limit must be a positive number or null, got "
            f"{self.time_limit!r}",
        )
        object.__setattr__(self, "ub_methods", tuple(self.ub_methods))
        object.__setattr__(self, "sides", tuple(self.sides))
        unknown = [m for m in self.ub_methods if m not in _KNOWN_UB_METHODS]
        _require(
            not unknown,
            f"unknown ub_methods {unknown!r}; known: {_KNOWN_UB_METHODS}",
        )
        _require(bool(self.sides), "sides must not be empty")
        unknown = [s for s in self.sides if s not in _KNOWN_SIDES]
        _require(
            not unknown, f"unknown sides {unknown!r}; known: {_KNOWN_SIDES}"
        )
        _require(
            isinstance(self.ds_depth, int) and self.ds_depth >= 0,
            f"ds_depth must be a non-negative integer, got {self.ds_depth!r}",
        )
        _require(
            isinstance(self.max_lattice_products, int)
            and self.max_lattice_products >= 1,
            "max_lattice_products must be a positive integer",
        )
        _require(
            self.solver_config is None
            or isinstance(self.solver_config, SolverConfig),
            "solver_config must be a SolverConfig or null",
        )
        if self.solver_config == SolverConfig():
            object.__setattr__(self, "solver_config", None)

    def to_janus_options(self) -> JanusOptions:
        return JanusOptions(
            max_conflicts=self.max_conflicts,
            lm_time_limit=self.time_limit,
            solver=self.solver_config or SolverConfig(),
            ub_methods=self.ub_methods,
            sides=self.sides,
            ds_depth=self.ds_depth,
            verify=self.verify,
            trim_solutions=self.trim,
            max_lattice_products=self.max_lattice_products,
            exact_minimization=self.exact,
        )

    @classmethod
    def from_janus_options(cls, options: JanusOptions) -> "RequestOptions":
        return cls(
            max_conflicts=options.max_conflicts,
            time_limit=options.lm_time_limit,
            solver_config=options.solver,  # default normalizes to None
            ub_methods=options.ub_methods,
            sides=options.sides,
            ds_depth=options.ds_depth,
            verify=options.verify,
            trim=options.trim_solutions,
            max_lattice_products=options.max_lattice_products,
            exact=options.exact_minimization,
        )

    def to_wire(self) -> dict:
        return {
            "max_conflicts": self.max_conflicts,
            "time_limit": self.time_limit,
            "ub_methods": list(self.ub_methods),
            "sides": list(self.sides),
            "ds_depth": self.ds_depth,
            "verify": self.verify,
            "trim": self.trim,
            "max_lattice_products": self.max_lattice_products,
            "exact": self.exact,
            "solver_config": solver_config_to_wire(self.solver_config),
        }

    @classmethod
    def from_wire(cls, wire: dict) -> "RequestOptions":
        _require(isinstance(wire, dict), "options must be an object")
        known = {f for f in cls.__dataclass_fields__}
        unknown = [k for k in wire if k not in known]
        _require(not unknown, f"unknown option fields {unknown!r}")
        kwargs = dict(wire)
        for key in ("ub_methods", "sides"):
            if key in kwargs:
                _require(
                    isinstance(kwargs[key], (list, tuple)),
                    f"{key} must be a list",
                )
                kwargs[key] = tuple(kwargs[key])
        if "solver_config" in kwargs:
            raw = kwargs["solver_config"]
            _require(
                raw is None or isinstance(raw, dict),
                "solver_config must be an object or null",
            )
            try:
                kwargs["solver_config"] = solver_config_from_wire(raw)
            except (TypeError, SolverError) as exc:
                raise ValidationError(
                    f"malformed solver_config: {exc}"
                ) from exc
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise ValidationError(f"malformed options: {exc}") from exc


# ------------------------------------------------------------------ targets
def _target_to_wire(target: TargetLike) -> dict:
    """Serialize any accepted target form.

    Expressions stay expressions (human-readable on the wire); everything
    else is canonicalized to truth-table bits, which every target form
    reduces to deterministically.
    """
    if isinstance(target, str):
        _require(bool(target.strip()), "target expression must not be empty")
        return {"form": "sop", "expression": target}
    if isinstance(target, Sop):
        target = target.to_truthtable()
    if isinstance(target, TruthTable):
        return {
            "form": "truthtable",
            "num_vars": target.num_vars,
            "on": _tt_hex(target),
            "dc": None,
        }
    if isinstance(target, TargetSpec):
        return {
            "form": "truthtable",
            "num_vars": target.num_inputs,
            "on": _tt_hex(target.tt),
            "dc": _tt_hex(target.dc) if target.dc is not None else None,
            "names": list(target.names) if target.names else None,
        }
    raise ValidationError(f"cannot serialize target of type {type(target)!r}")


def _target_spec_from_wire(
    wire: dict, name: str, options: RequestOptions
) -> TargetSpec:
    """Build the concrete :class:`TargetSpec` a wire target describes."""
    form = wire.get("form")
    if form == "sop":
        return TargetSpec.from_string(
            wire["expression"], name=name, exact=options.exact
        )
    num_vars = wire["num_vars"]
    tt = _tt_from_hex(wire["on"], num_vars)
    dc = _tt_from_hex(wire["dc"], num_vars) if wire.get("dc") else None
    return TargetSpec.from_truthtable(
        tt, name=name, names=wire.get("names"), exact=options.exact, dc=dc
    )


def _validate_target_wire(wire: Any) -> dict:
    _require(isinstance(wire, dict), "target must be an object")
    form = wire.get("form")
    if form == "sop":
        expr = wire.get("expression")
        _require(
            isinstance(expr, str) and bool(expr.strip()),
            "sop target needs a non-empty expression",
        )
        return {"form": "sop", "expression": expr}
    if form == "truthtable":
        num_vars = wire.get("num_vars")
        _require(
            isinstance(num_vars, int) and 0 <= num_vars <= 24,
            f"truthtable target num_vars out of range: {num_vars!r}",
        )
        on = wire.get("on")
        _require(isinstance(on, str), "truthtable target needs hex 'on' bits")
        expected = max(1, (1 << num_vars) // 8) * 2
        _require(
            len(on) == expected,
            f"'on' bits: expected {expected} hex chars for {num_vars} "
            f"variables, got {len(on)}",
        )
        _require(_is_hex(on), "'on' bits must be lowercase hex")
        dc = wire.get("dc")
        _require(
            dc is None
            or (isinstance(dc, str) and len(dc) == expected and _is_hex(dc)),
            "'dc' bits must be null or hex of the 'on' bit length",
        )
        out = {"form": "truthtable", "num_vars": num_vars, "on": on, "dc": dc}
        names = wire.get("names")
        if names is not None:
            _require(
                isinstance(names, list) and len(names) == num_vars,
                "names must list one name per variable",
            )
            out["names"] = list(names)
        return out
    raise ValidationError(f"unknown target form {form!r} (sop|truthtable)")


# ----------------------------------------------------------------- requests
@dataclass(frozen=True)
class SynthesisRequest:
    """One synthesis job: a target, a backend name, and solver options."""

    target: dict  # wire form; build with from_target()/from_json()
    name: str = "f"
    backend: str = "janus"
    options: RequestOptions = field(default_factory=RequestOptions)

    def __post_init__(self) -> None:
        _require(
            isinstance(self.name, str) and bool(self.name),
            f"name must be a non-empty string, got {self.name!r}",
        )
        _require(
            isinstance(self.backend, str) and bool(self.backend),
            f"backend must be a non-empty string, got {self.backend!r}",
        )
        _require(
            isinstance(self.options, RequestOptions),
            "options must be a RequestOptions",
        )
        object.__setattr__(
            self, "target", _validate_target_wire(self.target)
        )

    @classmethod
    def from_target(
        cls,
        target: TargetLike,
        name: str = "f",
        backend: str = "janus",
        options: Optional[RequestOptions] = None,
    ) -> "SynthesisRequest":
        """Build a request from any accepted target form."""
        if isinstance(target, TargetSpec) and name == "f":
            name = target.name
        return cls(
            target=_target_to_wire(target),
            name=name,
            backend=backend,
            options=options or RequestOptions(),
        )

    def to_spec(self) -> TargetSpec:
        """The concrete synthesis target this request describes."""
        return _target_spec_from_wire(self.target, self.name, self.options)

    def with_backend(self, backend: str) -> "SynthesisRequest":
        return replace(self, backend=backend)

    def to_wire(self) -> dict:
        return {
            "api": API_VERSION,
            "kind": "synthesis_request",
            "target": self.target,
            "name": self.name,
            "backend": self.backend,
            "options": self.options.to_wire(),
        }

    def to_json(self) -> str:
        return _canonical(self.to_wire())

    @classmethod
    def from_wire(cls, wire: dict) -> "SynthesisRequest":
        wire = _check_envelope(wire, "synthesis_request")
        return cls(
            target=wire.get("target"),
            name=wire.get("name", "f"),
            backend=wire.get("backend", "janus"),
            options=RequestOptions.from_wire(wire.get("options", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "SynthesisRequest":
        try:
            wire = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"request is not valid JSON: {exc}") from exc
        return cls.from_wire(wire)


# ---------------------------------------------------------------- responses
@dataclass
class SynthesisResponse:
    """The result of one synthesis job, in wire form.

    ``result`` (when present) is the in-process
    :class:`~repro.core.janus.SynthesisResult` the response was built
    from — it gives callers the live :class:`LatticeAssignment` without
    a decode round-trip, and is deliberately *not* part of the wire
    form.  A response rebuilt with :meth:`from_json` carries
    ``result=None``; use :attr:`entries` / :meth:`to_json` for
    everything serializable.
    """

    name: str
    backend: str
    rows: int
    cols: int
    size: int
    lower_bound: int
    initial_lower_bound: int
    initial_upper_bound: int
    provably_minimum: bool
    method: str
    upper_bounds: dict[str, tuple[int, int]]
    assignment: dict  # shared wire form (rows/cols/entries)
    attempts: list[dict]  # shared wire form, one per LM probe
    wall_time: float
    stats: Optional[dict] = None  # EngineStats snapshot, when available
    result: Optional[SynthesisResult] = None

    @property
    def shape(self) -> str:
        return f"{self.rows}x{self.cols}"

    @property
    def entries(self) -> list:
        return self.assignment["entries"]

    @classmethod
    def from_result(
        cls,
        result: SynthesisResult,
        backend: str = "janus",
        stats: Optional[dict] = None,
    ) -> "SynthesisResponse":
        return cls(
            name=result.spec.name,
            backend=backend,
            rows=result.rows,
            cols=result.cols,
            size=result.size,
            lower_bound=result.lower_bound,
            initial_lower_bound=result.initial_lower_bound,
            initial_upper_bound=result.initial_upper_bound,
            provably_minimum=result.is_provably_minimum,
            method=result.method,
            upper_bounds=dict(result.upper_bounds),
            assignment=assignment_to_wire(result.assignment),
            attempts=[attempt_to_wire(a) for a in result.attempts],
            wall_time=result.wall_time,
            stats=stats,
            result=result,
        )

    def to_result(self, spec: TargetSpec) -> SynthesisResult:
        """Rebuild a :class:`SynthesisResult` against a concrete spec
        (used by readers that only have the wire form)."""
        return SynthesisResult(
            spec=spec,
            assignment=assignment_from_wire(
                self.assignment, spec.num_inputs, spec.name_list()
            ),
            lower_bound=self.lower_bound,
            initial_upper_bound=self.initial_upper_bound,
            upper_bounds=dict(self.upper_bounds),
            attempts=[attempt_from_wire(a, cached=True) for a in self.attempts],
            wall_time=self.wall_time,
            method=self.method,
            initial_lower_bound=self.initial_lower_bound,
        )

    def to_wire(self) -> dict:
        return {
            "api": API_VERSION,
            "kind": "synthesis_response",
            "name": self.name,
            "backend": self.backend,
            "rows": self.rows,
            "cols": self.cols,
            "size": self.size,
            "lower_bound": self.lower_bound,
            "initial_lower_bound": self.initial_lower_bound,
            "initial_upper_bound": self.initial_upper_bound,
            "provably_minimum": self.provably_minimum,
            "method": self.method,
            "upper_bounds": {
                k: [r, c] for k, (r, c) in self.upper_bounds.items()
            },
            "assignment": self.assignment,
            "attempts": self.attempts,
            "wall_time": self.wall_time,
            "stats": self.stats,
        }

    def to_json(self) -> str:
        return _canonical(self.to_wire())

    @classmethod
    def from_wire(cls, wire: dict) -> "SynthesisResponse":
        wire = _check_envelope(wire, "synthesis_response")
        try:
            return cls(
                name=wire["name"],
                backend=wire["backend"],
                rows=wire["rows"],
                cols=wire["cols"],
                size=wire["size"],
                lower_bound=wire["lower_bound"],
                initial_lower_bound=wire["initial_lower_bound"],
                initial_upper_bound=wire["initial_upper_bound"],
                provably_minimum=wire["provably_minimum"],
                method=wire["method"],
                upper_bounds={
                    k: (r, c) for k, (r, c) in wire["upper_bounds"].items()
                },
                assignment=wire["assignment"],
                attempts=list(wire["attempts"]),
                wall_time=wire["wall_time"],
                stats=wire.get("stats"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ValidationError(
                f"malformed synthesis_response: {exc!r}"
            ) from exc

    @classmethod
    def from_json(cls, text: str) -> "SynthesisResponse":
        try:
            wire = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"response is not valid JSON: {exc}") from exc
        return cls.from_wire(wire)


# ------------------------------------------------------------------ batches
@dataclass(frozen=True)
class BatchRequest:
    """An ordered collection of synthesis jobs run under one session."""

    requests: tuple[SynthesisRequest, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "requests", tuple(self.requests))
        _require(bool(self.requests), "batch must contain at least one request")
        _require(
            all(isinstance(r, SynthesisRequest) for r in self.requests),
            "batch items must be SynthesisRequest objects",
        )

    def __len__(self) -> int:
        return len(self.requests)

    def to_wire(self) -> dict:
        return {
            "api": API_VERSION,
            "kind": "batch_request",
            "requests": [
                {
                    k: v
                    for k, v in r.to_wire().items()
                    if k not in ("api", "kind")
                }
                for r in self.requests
            ],
        }

    def to_json(self) -> str:
        return _canonical(self.to_wire())

    @classmethod
    def from_wire(cls, wire: dict) -> "BatchRequest":
        wire = _check_envelope(wire, "batch_request")
        items = wire.get("requests")
        _require(isinstance(items, list), "batch requests must be a list")
        return cls(
            requests=tuple(
                SynthesisRequest.from_wire(
                    {"api": wire["api"], "kind": "synthesis_request", **item}
                )
                for item in items
            )
        )

    @classmethod
    def from_json(cls, text: str) -> "BatchRequest":
        try:
            wire = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"batch is not valid JSON: {exc}") from exc
        return cls.from_wire(wire)


@dataclass
class BatchResponse:
    """Responses for a batch, in request order."""

    responses: list[SynthesisResponse]
    wall_time: float = 0.0
    stats: Optional[dict] = None  # aggregated EngineStats snapshot

    def __len__(self) -> int:
        return len(self.responses)

    def __iter__(self):
        return iter(self.responses)

    def to_wire(self) -> dict:
        return {
            "api": API_VERSION,
            "kind": "batch_response",
            "responses": [
                {
                    k: v
                    for k, v in r.to_wire().items()
                    if k not in ("api", "kind")
                }
                for r in self.responses
            ],
            "wall_time": self.wall_time,
            "stats": self.stats,
        }

    def to_json(self) -> str:
        return _canonical(self.to_wire())

    @classmethod
    def from_wire(cls, wire: dict) -> "BatchResponse":
        wire = _check_envelope(wire, "batch_response")
        items = wire.get("responses")
        _require(isinstance(items, list), "batch responses must be a list")
        return cls(
            responses=[
                SynthesisResponse.from_wire(
                    {"api": wire["api"], "kind": "synthesis_response", **item}
                )
                for item in items
            ],
            wall_time=wire.get("wall_time", 0.0),
            stats=wire.get("stats"),
        )

    @classmethod
    def from_json(cls, text: str) -> "BatchResponse":
        try:
            wire = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValidationError(f"batch is not valid JSON: {exc}") from exc
        return cls.from_wire(wire)
