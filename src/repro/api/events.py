"""Public names for the structured progress/event channel.

The event types are defined at the engine layer
(:mod:`repro.engine.events`) because the engine emits them; this module
re-exports them as part of the stable API surface.  Subscribe with
``Session(events=callback)`` or ``session.subscribe(callback)``::

    from repro.api import Session, ProbeFinished, CacheEvent

    hits = 0

    def watch(event):
        global hits
        if isinstance(event, CacheEvent) and event.hit:
            hits += 1
        if isinstance(event, ProbeFinished):
            print(f"{event.name}: {event.rows}x{event.cols} {event.status}")

    with Session(cache="/tmp/janus-cache", events=watch) as session:
        session.synthesize("ab + a'b'c")
"""

from repro.engine.events import (
    EVENT_KINDS,
    BoundComputed,
    CacheEvent,
    EngineEvent,
    ProbeFinished,
    ProbeStarted,
    SynthesisFinished,
    SynthesisStarted,
    event_from_wire,
    event_to_wire,
)

__all__ = [
    "EngineEvent",
    "EVENT_KINDS",
    "ProbeStarted",
    "ProbeFinished",
    "BoundComputed",
    "CacheEvent",
    "SynthesisStarted",
    "SynthesisFinished",
    "event_to_wire",
    "event_from_wire",
]
