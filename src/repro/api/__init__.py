"""``repro.api`` — the stable public API for lattice synthesis.

This facade is the one entry point every frontend shares: the CLI, the
benchmark runner and the examples all speak it, and the HTTP service
(:mod:`repro.server`, ``janus serve``) exposes it verbatim.  Three
pieces:

* **Schema** (:mod:`repro.api.schema`) — versioned, validating
  request/response dataclasses with a canonical JSON wire format:
  :class:`SynthesisRequest` / :class:`SynthesisResponse` and their batch
  forms.  ``from_json(x.to_json())`` round-trips exactly.
* **Backends** (:mod:`repro.api.backends`) — the algorithm registry.
  ``janus`` (alias ``eager``), ``cegar``, ``portfolio`` and the paper's
  baselines (``exact``, ``approx``, ``heuristic``, ``pcircuit``) are
  pre-registered; custom engines join via :func:`register_backend`.
* **Sessions** (:mod:`repro.api.session`) — configuration + lifecycle.
  A :class:`Session` owns the worker pool, the layered result caches and
  the structured progress-event channel, and reuses them across calls.

Quickstart::

    from repro.api import Session

    with Session(jobs=4, cache="~/.cache/janus") as session:
        response = session.synthesize("ab + a'b'c")
        print(response.shape, response.size)
        print(response.to_json())          # the wire format

One-shot helpers :func:`synthesize` and :func:`run_batch` wrap a
throwaway session for scripts that make a single call.

Progress is a structured event channel (:mod:`repro.api.events`):
``Session(events=cb)`` / ``session.subscribe(cb)`` deliver frozen
dataclasses per probe/bound/cache/synthesis occurrence, and
:func:`event_to_wire` / :func:`event_from_wire` convert them to the
JSON form the HTTP event stream serves.  The full wire format is
documented field by field in ``docs/wire-schema.md``.
"""

from repro.api.backends import (
    REGISTRY,
    Backend,
    BackendContext,
    BackendRegistry,
    backend_names,
    get_backend,
    register_backend,
)
from repro.api.events import (
    EVENT_KINDS,
    BoundComputed,
    CacheEvent,
    EngineEvent,
    ProbeFinished,
    ProbeStarted,
    SynthesisFinished,
    SynthesisStarted,
    event_from_wire,
    event_to_wire,
)
from repro.api.schema import (
    API_VERSION,
    BatchRequest,
    BatchResponse,
    RequestOptions,
    SynthesisRequest,
    SynthesisResponse,
)
from repro.api.session import Session, run_batch, synthesize
from repro.errors import ApiError, UnknownBackendError, ValidationError

__all__ = [
    "API_VERSION",
    "ApiError",
    "Backend",
    "BackendContext",
    "BackendRegistry",
    "BatchRequest",
    "BatchResponse",
    "BoundComputed",
    "CacheEvent",
    "EVENT_KINDS",
    "EngineEvent",
    "ProbeFinished",
    "ProbeStarted",
    "REGISTRY",
    "RequestOptions",
    "Session",
    "SynthesisFinished",
    "SynthesisRequest",
    "SynthesisResponse",
    "SynthesisStarted",
    "UnknownBackendError",
    "ValidationError",
    "backend_names",
    "event_from_wire",
    "event_to_wire",
    "get_backend",
    "register_backend",
    "run_batch",
    "synthesize",
]
