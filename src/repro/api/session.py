"""Sessions: engine configuration + lifecycle behind the stable API.

A :class:`Session` owns everything stateful about synthesis — the worker
pool, the layered result caches, speculation, the event channel — so
callers configure once and submit many requests::

    from repro.api import Session

    with Session(jobs=4, cache="~/.cache/janus") as session:
        response = session.synthesize("ab + a'b'c")
        print(response.shape, response.size)

The process pool and caches are reused across every ``synthesize`` /
``run_batch`` call in the session, which is the point: per-call engine
setup is what the old ad-hoc wiring paid over and over.

Results are **byte-identical to the serial path** for deterministic
backends: a session is just configuration around the same search the
module-level :func:`repro.core.janus.synthesize` runs (the ``portfolio``
backend is the documented exception — it races encoders and may return a
different, equally valid lattice).
"""

from __future__ import annotations

import dataclasses
import time
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.api.backends import (
    REGISTRY,
    BackendContext,
    BackendRegistry,
    resolve_solver_config,
)
from repro.api.schema import (
    BatchRequest,
    BatchResponse,
    RequestOptions,
    SynthesisRequest,
    SynthesisResponse,
    TargetLike,
)
from repro.core.target import TargetSpec
from repro.engine.events import EngineEvent
from repro.engine.parallel import EngineStats, ParallelEngine, default_jobs
from repro.gen.dispatch import DispatchTable
from repro.sat.solver import SolverConfig

__all__ = ["Session", "synthesize", "run_batch"]


class Session:
    """A configured synthesis service: pluggable backends, shared engine.

    Parameters mirror the engine's knobs: ``jobs`` worker processes
    (0 = one per available CPU), ``cache`` for the persistent result
    store (with the in-memory LRU layered on top; ``memory`` bounds its
    entry count), ``speculate`` for next-step prefetching, ``portfolio``
    to make the per-probe encoder race the session default.  ``events``
    registers a structured progress callback
    (:class:`~repro.engine.events.EngineEvent` subclasses); more can be
    added later with :meth:`subscribe`.

    Sessions are context managers; closing shuts the pool down.  A
    closed session refuses further work.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Union[str, Path, None] = None,
        portfolio: bool = False,
        speculate: bool = True,
        memory: Optional[int] = None,
        events: Optional[Callable[[EngineEvent], None]] = None,
        registry: Optional[BackendRegistry] = None,
        npn: bool = False,
        presets: Optional[Sequence[str]] = None,
        solver_configs: Optional[
            dict[str, Union[str, SolverConfig]]
        ] = None,
        dispatch: Union[DispatchTable, str, Path, None] = None,
    ) -> None:
        self.jobs = default_jobs() if jobs == 0 else max(1, int(jobs))
        self.cache = str(cache) if cache is not None else None
        self.portfolio = portfolio
        self.speculate = speculate
        self.memory = memory
        self.npn = npn
        # ``presets`` is the list the portfolio engine races; unset means
        # the engine default.  ``solver_configs`` maps backend name ->
        # SolverConfig (or preset name) applied to requests that carry no
        # explicit solver_config of their own.
        self.presets = tuple(presets) if presets is not None else None
        self.solver_configs: dict[str, SolverConfig] = {
            backend: resolve_solver_config(value)
            for backend, value in (solver_configs or {}).items()
        }
        # Learned portfolio dispatch: a shared DispatchTable object or a
        # path.  The session resolves a path once (and then owns the
        # table: it is saved when the session closes); a live object is
        # the caller's — a server pool shares one table across sessions
        # and persists it itself.
        self._dispatch_owner = dispatch is not None and not isinstance(
            dispatch, DispatchTable
        )
        if self._dispatch_owner:
            dispatch = DispatchTable(dispatch)
        self.dispatch: Optional[DispatchTable] = dispatch
        self.registry = registry if registry is not None else REGISTRY
        self._callbacks: list[Callable[[EngineEvent], None]] = (
            [events] if events is not None else []
        )
        self._engine: Optional[ParallelEngine] = None
        self._portfolio_engine: Optional[ParallelEngine] = None
        self._closed = False

    # ------------------------------------------------------------ lifecycle
    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        for engine in (self._engine, self._portfolio_engine):
            if engine is not None:
                engine.close()
        self._engine = None
        self._portfolio_engine = None
        if (
            self._dispatch_owner
            and self.dispatch is not None
            and self.dispatch.path is not None
            and not self._closed
        ):
            self.dispatch.save()
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("session is closed")

    # -------------------------------------------------------------- engines
    def _make_engine(self, portfolio: bool) -> ParallelEngine:
        jobs = self.jobs
        if portfolio:
            # The per-probe backend race needs two workers even when the
            # session is otherwise serial.
            jobs = max(2, jobs)
        engine = ParallelEngine(
            jobs=jobs,
            cache=self.cache,
            portfolio=portfolio,
            speculate=self.speculate,
            memory=self.memory,
            npn=self.npn,
            presets=self.presets,
            dispatch=self.dispatch,
        )
        for callback in self._callbacks:
            engine.events.subscribe(callback)
        return engine

    @property
    def engine(self) -> ParallelEngine:
        """The session's deterministic engine (created lazily, reused).

        The portfolio engine is separate and only ever serves requests
        whose *backend* is ``portfolio`` — a session-level
        ``portfolio=True`` changes the default backend for raw targets,
        but an explicit ``backend="janus"`` request must stay on the
        deterministic path.
        """
        self._check_open()
        if self._engine is None:
            self._engine = self._make_engine(portfolio=False)
        return self._engine

    def _portfolio_engine_instance(self) -> ParallelEngine:
        if self._portfolio_engine is None:
            self._portfolio_engine = self._make_engine(portfolio=True)
        return self._portfolio_engine

    def subscribe(self, callback: Callable[[EngineEvent], None]) -> None:
        """Add a progress-event callback; applies to existing engines and
        any the session creates later."""
        self._callbacks.append(callback)
        for engine in (self._engine, self._portfolio_engine):
            if engine is not None:
                engine.events.subscribe(callback)

    def unsubscribe(self, callback: Callable[[EngineEvent], None]) -> None:
        """Detach a progress-event callback from the session and every
        engine it is wired into (no-op if it was never subscribed).

        Lets a long-lived session serve short-lived listeners — the HTTP
        service attaches one collector per batch job and detaches it when
        the job completes.
        """
        if callback in self._callbacks:
            self._callbacks.remove(callback)
        for engine in (self._engine, self._portfolio_engine):
            if engine is not None:
                engine.events.unsubscribe(callback)

    @property
    def stats(self) -> EngineStats:
        """Merged work accounting across the session's engines."""
        total = EngineStats()
        for engine in (self._engine, self._portfolio_engine):
            if engine is not None:
                total.merge(dataclasses.asdict(engine.stats))
        return total

    def _stats_delta(self, before: dict) -> dict:
        """Stats accumulated since a ``dataclasses.asdict`` snapshot.

        Dict-valued fields (``preset_wins``) delta per key; keys whose
        delta is zero are dropped so a request that raced nothing shows
        an empty tally, not a tally of zeroes.
        """
        after = dataclasses.asdict(self.stats)
        delta: dict = {}
        for k, value in after.items():
            if isinstance(value, dict):
                prior = before.get(k) or {}
                diff = {
                    key: count - prior.get(key, 0)
                    for key, count in value.items()
                    if count - prior.get(key, 0)
                }
                delta[k] = diff
            else:
                delta[k] = value - before.get(k, 0)
        return delta

    # ------------------------------------------------------------ execution
    def _coerce_request(
        self,
        target: Union[SynthesisRequest, TargetLike],
        name: str,
        backend: Optional[str],
        options: Optional[RequestOptions],
    ) -> tuple[SynthesisRequest, Optional[TargetSpec]]:
        """Build the request plus, when the caller handed us a live
        :class:`TargetSpec`, the spec itself (used directly so custom
        covers survive; the wire form canonicalizes to truth tables)."""
        if isinstance(target, SynthesisRequest):
            request = target
            if backend is not None:
                request = request.with_backend(backend)
            return request, None
        request = SynthesisRequest.from_target(
            target,
            name=name,
            backend=backend or ("portfolio" if self.portfolio else "janus"),
            options=options or RequestOptions(),
        )
        spec = target if isinstance(target, TargetSpec) else None
        return request, spec

    def _run(
        self, request: SynthesisRequest, spec: Optional[TargetSpec] = None
    ) -> SynthesisResponse:
        backend = self.registry.get(request.backend)
        # Per-backend session tuning applies only when the request does
        # not pin its own solver_config — explicit request tuning wins.
        session_config = self.solver_configs.get(request.backend)
        if session_config is not None and (
            request.options.solver_config is None
        ):
            request = dataclasses.replace(
                request,
                options=dataclasses.replace(
                    request.options, solver_config=session_config
                ),
            )
        if spec is None:
            spec = request.to_spec()
        context = BackendContext(
            engine=self.engine,
            portfolio_engine=self._portfolio_engine_instance,
        )
        before = dataclasses.asdict(self.stats)
        result = backend.run(spec, request.options.to_janus_options(), context)
        return SynthesisResponse.from_result(
            result,
            backend=request.backend,
            stats=self._stats_delta(before),
        )

    def synthesize(
        self,
        target: Union[SynthesisRequest, TargetLike],
        name: str = "f",
        backend: Optional[str] = None,
        options: Optional[RequestOptions] = None,
    ) -> SynthesisResponse:
        """Run one synthesis job and return its response.

        ``target`` may be a prepared :class:`SynthesisRequest` or any
        raw target form (expression string, :class:`Sop`,
        :class:`TruthTable`, :class:`TargetSpec`); the remaining
        arguments apply only to raw targets.
        """
        self._check_open()
        request, spec = self._coerce_request(target, name, backend, options)
        return self._run(request, spec)

    def run_batch(
        self,
        batch: Union[BatchRequest, Iterable[SynthesisRequest]],
    ) -> BatchResponse:
        """Run a batch of requests in order under this session.

        One engine (pool + caches) serves the whole batch; responses come
        back in request order, each with its own per-request stats delta,
        and the batch carries the aggregate.
        """
        self._check_open()
        if not isinstance(batch, BatchRequest):
            batch = BatchRequest(requests=tuple(batch))
        start = time.monotonic()
        before = dataclasses.asdict(self.stats)
        responses = [self._run(request) for request in batch.requests]
        return BatchResponse(
            responses=responses,
            wall_time=time.monotonic() - start,
            stats=self._stats_delta(before),
        )

    def __repr__(self) -> str:
        return (
            f"Session(jobs={self.jobs}, cache={self.cache!r}, "
            f"portfolio={self.portfolio}, closed={self._closed})"
        )


# ------------------------------------------------------------- conveniences
def synthesize(
    target: Union[SynthesisRequest, TargetLike],
    name: str = "f",
    backend: Optional[str] = None,
    options: Optional[RequestOptions] = None,
    **session_kwargs,
) -> SynthesisResponse:
    """One-shot facade call: a throwaway serial :class:`Session`."""
    with Session(**session_kwargs) as session:
        return session.synthesize(
            target, name=name, backend=backend, options=options
        )


def run_batch(
    batch: Union[BatchRequest, Iterable[SynthesisRequest]],
    **session_kwargs,
) -> BatchResponse:
    """One-shot batch run in a throwaway :class:`Session`."""
    with Session(**session_kwargs) as session:
        return session.run_batch(batch)
