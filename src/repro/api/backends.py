"""Pluggable synthesis backends behind a common protocol.

A *backend* is one way to turn a :class:`TargetSpec` into a
:class:`SynthesisResult`.  The registry maps stable string names — the
``backend`` field of a :class:`~repro.api.schema.SynthesisRequest` — to
implementations, so frontends select algorithms by name instead of
importing solver internals:

===========  ==============================================================
name         algorithm
===========  ==============================================================
``janus``    the paper's dichotomic search (alias ``eager``); uses the
             session's engine for probe racing / caching when available
``cegar``    the same search with the lazy CEGAR prober per LM instance
``portfolio``  JANUS racing solver presets and the CEGAR encoder
             inside every probe (first decisive answer wins)
``exact``    exact method of Gange et al. [6] (plain encoding, old bounds)
``approx``   approximate method of [6] (single-product path restriction)
``heuristic``  shape heuristic of Morgul & Altun [11]
``pcircuit`` p-circuit-style decomposition baseline [9]
===========  ==============================================================

Custom backends register with :func:`register_backend` (or
``BackendRegistry.register`` on a private registry) and become
addressable from every frontend, the JSON wire format included.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol, runtime_checkable

from repro.core.baselines import (
    approx_restricted,
    decompose_pcircuit,
    exact_search,
    heuristic_candidates,
)
from repro.core.janus import (
    JanusOptions,
    SerialProber,
    SynthesisResult,
    synthesize as _synthesize,
)
from repro.core.target import TargetSpec
from repro.errors import SolverError, UnknownBackendError, ValidationError
from repro.sat.solver import SolverConfig

__all__ = [
    "Backend",
    "BackendContext",
    "BackendRegistry",
    "REGISTRY",
    "register_backend",
    "get_backend",
    "backend_names",
    "resolve_solver_config",
]


def resolve_solver_config(
    value: "str | SolverConfig | None",
) -> SolverConfig:
    """Coerce a preset name or config object to a :class:`SolverConfig`.

    The shared coercion point for every frontend knob (session
    ``solver_configs``, the server's ``?preset=``, the CLI's
    ``--solver-preset``): unknown preset names and wrong types surface as
    :class:`ValidationError`, the API's input-error type.
    """
    if value is None:
        return SolverConfig()
    if isinstance(value, SolverConfig):
        return value
    if isinstance(value, str):
        try:
            return SolverConfig.preset(value)
        except SolverError as exc:
            raise ValidationError(str(exc)) from exc
    raise ValidationError(
        f"solver config must be a SolverConfig or preset name, "
        f"got {type(value).__name__}"
    )


@dataclass
class BackendContext:
    """Execution context a session hands to a backend.

    ``engine`` is the session's :class:`~repro.engine.ParallelEngine`
    (or ``None`` for the bare serial path); backends that can exploit
    probe racing or the result caches route their search through it.
    ``portfolio_engine`` is a factory for an engine with the per-probe
    backend race enabled — only the ``portfolio`` backend asks for it.
    """

    engine: Optional[SerialProber] = None
    portfolio_engine: Optional[Callable[[], SerialProber]] = None


@runtime_checkable
class Backend(Protocol):
    """One named synthesis algorithm."""

    name: str

    def run(
        self,
        spec: TargetSpec,
        options: JanusOptions,
        context: BackendContext,
    ) -> SynthesisResult: ...


@dataclass(frozen=True)
class _FunctionBackend:
    """Adapter: a plain ``fn(spec, options=...)`` baseline as a Backend."""

    name: str
    fn: Callable[..., SynthesisResult]

    def run(
        self,
        spec: TargetSpec,
        options: JanusOptions,
        context: BackendContext,
    ) -> SynthesisResult:
        return self.fn(spec, options=options)


class _JanusBackend:
    """The paper's search; rides the session engine when one exists."""

    name = "janus"

    def run(
        self,
        spec: TargetSpec,
        options: JanusOptions,
        context: BackendContext,
    ) -> SynthesisResult:
        engine = context.engine
        if engine is not None:
            engine_synthesize = getattr(engine, "synthesize", None)
            if engine_synthesize is not None:
                # The engine's own entry point engages the suite-level
                # result cache, not just the probe layer.
                return engine_synthesize(spec, options=options)
            return _synthesize(spec, options=options, prober=engine)
        return _synthesize(spec, options=options)


class _CegarProber(SerialProber):
    """Serial prober that decides every LM instance with the lazy CEGAR
    loop instead of the eager paper encoding."""

    def solve(self, spec, rows, cols, options):
        from repro.core.cegar import solve_lm_lazy

        return solve_lm_lazy(spec, rows, cols, options)


class _CegarBackend:
    name = "cegar"

    def run(
        self,
        spec: TargetSpec,
        options: JanusOptions,
        context: BackendContext,
    ) -> SynthesisResult:
        result = _synthesize(spec, options=options, prober=_CegarProber())
        result.method = "cegar"
        return result


class _PortfolioBackend:
    """JANUS racing solver presets and the lazy encoder in every probe.

    Needs a portfolio-configured engine (workers racing the eager
    encoding under each configured :class:`SolverConfig` preset plus the
    CEGAR backend per LM instance), which the session provides on
    demand.  Valid answers may come from any racer, so results need not
    match the deterministic ``janus`` lattice — callers choose this
    backend for wall-clock, not reproducibility.  Per-preset win counts
    accumulate in ``EngineStats.preset_wins``.
    """

    name = "portfolio"

    def run(
        self,
        spec: TargetSpec,
        options: JanusOptions,
        context: BackendContext,
    ) -> SynthesisResult:
        if context.portfolio_engine is None:
            raise ValidationError(
                "the 'portfolio' backend needs a session "
                "(repro.api.Session) to provide its racing engine"
            )
        engine = context.portfolio_engine()
        return engine.synthesize(spec, options=options)


class BackendRegistry:
    """Name -> :class:`Backend` mapping with alias support."""

    def __init__(self) -> None:
        self._backends: dict[str, Backend] = {}

    def register(
        self, backend: Backend, *aliases: str, replace: bool = False
    ) -> Backend:
        names = (backend.name, *aliases)
        for name in names:
            if not replace and name in self._backends:
                raise ValidationError(
                    f"backend name {name!r} is already registered"
                )
        for name in names:
            self._backends[name] = backend
        return backend

    def get(self, name: str) -> Backend:
        backend = self._backends.get(name)
        if backend is None:
            known = ", ".join(sorted(self._backends))
            raise UnknownBackendError(
                f"unknown backend {name!r}; registered backends: {known}"
            )
        return backend

    def names(self) -> list[str]:
        return sorted(self._backends)

    def __contains__(self, name: str) -> bool:
        return name in self._backends

    def __repr__(self) -> str:
        return f"BackendRegistry({self.names()})"


#: The default registry every session resolves against.
REGISTRY = BackendRegistry()
REGISTRY.register(_JanusBackend(), "eager")
REGISTRY.register(_CegarBackend())
REGISTRY.register(_PortfolioBackend())
REGISTRY.register(_FunctionBackend("exact", exact_search))
REGISTRY.register(_FunctionBackend("approx", approx_restricted))
REGISTRY.register(_FunctionBackend("heuristic", heuristic_candidates))
REGISTRY.register(_FunctionBackend("pcircuit", decompose_pcircuit))


def register_backend(backend: Backend, *aliases: str) -> Backend:
    """Register a custom backend in the default registry."""
    return REGISTRY.register(backend, *aliases)


def get_backend(name: str) -> Backend:
    """Resolve a backend name, raising :class:`UnknownBackendError`."""
    return REGISTRY.get(name)


def backend_names() -> list[str]:
    return REGISTRY.names()
