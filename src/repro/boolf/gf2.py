"""Linear algebra over GF(2) on bitmask-encoded vectors.

Vectors over GF(2)^n are Python ints whose bit *i* is coordinate *i* —
the same convention as minterms in :mod:`repro.boolf.truthtable`.  These
routines back the autosymmetry and D-reducibility analyses
(:mod:`repro.core.autosymmetric`, :mod:`repro.core.dreducible`), which
need spans, ranks, orthogonal complements and coset arithmetic of
subspaces of the Boolean cube.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "row_reduce",
    "rank",
    "span_basis",
    "in_span",
    "orthogonal_complement",
    "span_members",
    "dot",
]


def dot(a: int, b: int) -> int:
    """GF(2) inner product: parity of the AND of the two masks."""
    return (a & b).bit_count() & 1


def row_reduce(vectors: Iterable[int]) -> list[int]:
    """Reduced basis (row echelon over GF(2)) of the span of ``vectors``.

    Returns pivots in decreasing leading-bit order; the zero vector never
    appears.  Echelon form makes membership tests a linear scan.
    """
    basis: list[int] = []  # basis[i] has a unique leading (highest) bit
    for vec in vectors:
        for b in basis:
            vec = min(vec, vec ^ b)
        if vec:
            basis.append(vec)
            basis.sort(reverse=True)
    # Back-substitute so each leading bit appears in exactly one row.
    for i in range(len(basis)):
        lead = 1 << (basis[i].bit_length() - 1)
        for j in range(len(basis)):
            if j != i and basis[j] & lead:
                basis[j] ^= basis[i]
    basis.sort(reverse=True)
    return basis


def rank(vectors: Iterable[int]) -> int:
    """Dimension of the span."""
    return len(row_reduce(vectors))


def span_basis(vectors: Iterable[int]) -> list[int]:
    """Alias of :func:`row_reduce` under its mathematical name."""
    return row_reduce(vectors)


def in_span(vec: int, basis: Sequence[int]) -> bool:
    """Membership test against a reduced basis (as from :func:`row_reduce`)."""
    for b in basis:
        vec = min(vec, vec ^ b)
    return vec == 0


def orthogonal_complement(basis: Sequence[int], num_bits: int) -> list[int]:
    """Basis of ``{c : dot(c, b) == 0 for every b in basis}`` in GF(2)^n.

    Found by Gaussian elimination on the system ``basis @ c = 0``: the
    free coordinates parameterize the null space.
    """
    rows = row_reduce(basis)
    # Pivot coordinate of each row (its leading bit position).
    pivots = [row.bit_length() - 1 for row in rows]
    pivot_set = set(pivots)
    free = [i for i in range(num_bits) if i not in pivot_set]
    out: list[int] = []
    for f in free:
        # Set the free coordinate, then solve pivot coordinates bottom-up.
        vec = 1 << f
        for row, p in zip(rows, pivots):
            # Row constraint: parity of (vec restricted to row's support)
            # must be 0; the pivot coordinate is the only unknown.
            if dot(row & ~(1 << p), vec):
                vec |= 1 << p
        out.append(vec)
    return row_reduce(out)


def span_members(basis: Sequence[int]) -> list[int]:
    """Every element of the span (2**len(basis) vectors)."""
    members = [0]
    for b in basis:
        members.extend(m ^ b for m in list(members))
    return members
