"""Minato–Morreale irredundant sum-of-products computation.

``isop(tt)`` computes an irredundant SOP of a completely specified function;
``isop_interval(lower, upper)`` computes a cover *C* with
``lower <= C <= upper`` (the incompletely-specified generalization, with
``upper - lower`` acting as the don't-care set).

This is the library's espresso stand-in for ISOP duties: the result is an
irredundant cover consisting of prime implicants of the interval.  The
recursion follows Minato's classic formulation over truth-table cofactors
and memoizes on packed table bytes, which keeps it fast for the paper's
benchmark sizes (r <= 11).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.boolf.cube import Cube
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable

__all__ = ["isop", "isop_interval"]


def isop(tt: TruthTable, names: Optional[Sequence[str]] = None) -> Sop:
    """Irredundant SOP of a completely specified function."""
    return isop_interval(tt, tt, names)


def isop_interval(
    lower: TruthTable, upper: TruthTable, names: Optional[Sequence[str]] = None
) -> Sop:
    """Irredundant cover C with ``lower <= C <= upper``.

    Raises ``ValueError`` if ``lower`` is not contained in ``upper``.
    """
    if lower.num_vars != upper.num_vars:
        raise ValueError("interval endpoints over different universes")
    if not lower.implies(upper):
        raise ValueError("isop_interval requires lower <= upper")
    memo: dict[tuple[bytes, bytes, int], list[Cube]] = {}
    cubes = _isop(lower.values, upper.values, lower.num_vars, memo)
    return Sop(cubes, lower.num_vars, names)


def _cof(values: np.ndarray, var: int, bit: int) -> np.ndarray:
    block = 1 << var
    return values.reshape(-1, 2, block)[:, bit, :].reshape(-1)


def _key(lower: np.ndarray, upper: np.ndarray, num_vars: int):
    return (np.packbits(lower).tobytes(), np.packbits(upper).tobytes(), num_vars)


def _isop(
    lower: np.ndarray,
    upper: np.ndarray,
    num_vars: int,
    memo: dict,
) -> list[Cube]:
    if not lower.any():
        return []
    if upper.all():
        return [Cube.top(num_vars)]
    key = _key(lower, upper, num_vars)
    hit = memo.get(key)
    if hit is not None:
        return hit

    # Split on the highest variable on which the interval depends; splitting
    # high keeps the sub-tables contiguous slices.
    var = num_vars - 1
    while var >= 0:
        block = 1 << var
        lo = lower.reshape(-1, 2, block)
        up = upper.reshape(-1, 2, block)
        if (lo[:, 0, :] != lo[:, 1, :]).any() or (up[:, 0, :] != up[:, 1, :]).any():
            break
        var -= 1
    if var < 0:  # constant interval handled above; defensive fallback
        memo[key] = [Cube.top(num_vars)] if lower.any() else []
        return memo[key]

    l0, l1 = _cof(lower, var, 0), _cof(lower, var, 1)
    u0, u1 = _cof(upper, var, 0), _cof(upper, var, 1)

    # Cubes that must carry the ~x_var literal / the x_var literal.
    c0 = _isop(l0 & ~u1, u0, num_vars - 1, memo)
    c1 = _isop(l1 & ~u0, u1, num_vars - 1, memo)

    cov0 = _cover_values(c0, num_vars - 1)
    cov1 = _cover_values(c1, num_vars - 1)

    # What remains of the onset can be covered without mentioning x_var.
    l_rest = (l0 & ~cov0) | (l1 & ~cov1)
    cd = _isop(l_rest, u0 & u1, num_vars - 1, memo)

    bit = 1 << var
    out: list[Cube] = []
    for cube in c0:
        out.append(Cube(_expand_mask(cube.pos, var), _expand_mask(cube.neg, var) | bit, num_vars))
    for cube in c1:
        out.append(Cube(_expand_mask(cube.pos, var) | bit, _expand_mask(cube.neg, var), num_vars))
    for cube in cd:
        out.append(Cube(_expand_mask(cube.pos, var), _expand_mask(cube.neg, var), num_vars))
    memo[key] = out
    return out


def _expand_mask(mask: int, var: int) -> int:
    """Insert a zero bit at position ``var`` (inverse of dropping that var)."""
    low = mask & ((1 << var) - 1)
    high = mask >> var
    return (high << (var + 1)) | low


def _cover_values(cubes: list[Cube], num_vars: int) -> np.ndarray:
    if not cubes:
        return np.zeros(1 << num_vars, dtype=bool)
    return TruthTable.from_cubes(cubes, num_vars).values
