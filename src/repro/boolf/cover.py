"""Unate covering: pick a minimum subset of columns covering all rows.

Used by the exact two-level minimizer (rows = onset minterms, columns =
prime implicants) and exposed generically because set covering shows up in
several of the paper's bound constructions.

``min_cover`` runs essential-column extraction and row/column dominance to
a fixed point, then branch-and-bound with a maximal-independent-set lower
bound and a greedy incumbent.  ``greedy_cover`` is the cheap fallback.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Optional

__all__ = ["greedy_cover", "min_cover", "CoverBudget"]


class CoverBudget:
    """Node budget for branch-and-bound; ``exhausted`` reports overrun."""

    def __init__(self, max_nodes: int = 200_000) -> None:
        self.max_nodes = max_nodes
        self.nodes = 0
        self.exhausted = False

    def tick(self) -> bool:
        self.nodes += 1
        if self.nodes > self.max_nodes:
            self.exhausted = True
        return not self.exhausted


def greedy_cover(
    columns: Mapping[Hashable, frozenset], rows: frozenset
) -> list[Hashable]:
    """Greedy set cover (largest marginal coverage first, deterministic)."""
    remaining = set(rows)
    chosen: list[Hashable] = []
    items = sorted(columns.items(), key=lambda kv: _stable_key(kv[0]))
    while remaining:
        best = None
        best_gain = -1
        for key, cells in items:
            gain = len(cells & remaining)
            if gain > best_gain:
                best, best_gain = key, gain
        if best is None or best_gain == 0:
            raise ValueError("rows cannot be covered by the given columns")
        chosen.append(best)
        remaining -= columns[best]
    return chosen


def min_cover(
    columns: Mapping[Hashable, frozenset],
    rows: frozenset,
    budget: Optional[CoverBudget] = None,
) -> list[Hashable]:
    """Minimum-cardinality cover; optimal unless the budget runs out.

    When the budget is exhausted the best incumbent found so far is
    returned (and ``budget.exhausted`` is set), so callers degrade
    gracefully to a good heuristic answer.
    """
    if budget is None:
        budget = CoverBudget()
    uncoverable = rows - frozenset().union(*columns.values()) if columns else rows
    if uncoverable:
        raise ValueError(f"rows {sorted(uncoverable, key=_stable_key)} cannot be covered")

    incumbent = greedy_cover(columns, rows)
    state_cols = {k: frozenset(v & rows) for k, v in columns.items() if v & rows}
    chosen: list[Hashable] = []
    best = _search(state_cols, rows, chosen, incumbent, budget)
    return best


def _stable_key(x: Hashable) -> str:
    return repr(x)


def _reduce(
    columns: dict[Hashable, frozenset], rows: frozenset, chosen: list[Hashable]
) -> tuple[dict[Hashable, frozenset], frozenset, bool]:
    """Essential + dominance reductions to a fixed point."""
    changed = True
    while changed:
        changed = False
        # Essential columns: a row covered by exactly one column.
        cover_count: dict[Hashable, list] = {}
        for r in rows:
            covers = [k for k, cells in columns.items() if r in cells]
            cover_count[r] = covers
        for r, covers in cover_count.items():
            if len(covers) == 1:
                k = covers[0]
                chosen.append(k)
                rows = rows - columns[k]
                columns = {
                    kk: vv & rows for kk, vv in columns.items() if kk != k and vv & rows
                }
                changed = True
                break
        if changed:
            continue
        # Column dominance: drop a column contained in another.
        keys = sorted(columns, key=_stable_key)
        for i, a in enumerate(keys):
            for b in keys[i + 1 :]:
                if columns[a] <= columns[b]:
                    del columns[a]
                    changed = True
                    break
                if columns[b] < columns[a]:
                    del columns[b]
                    changed = True
                    break
            if changed:
                break
        if changed:
            continue
        # Row dominance: a row whose cover-set contains another row's
        # cover-set is easier; drop the dominating row.
        row_list = sorted(rows, key=_stable_key)
        row_covers = {
            r: frozenset(k for k, cells in columns.items() if r in cells)
            for r in row_list
        }
        for i, r1 in enumerate(row_list):
            for r2 in row_list[i + 1 :]:
                if row_covers[r1] <= row_covers[r2]:
                    rows = rows - {r2}
                    changed = True
                    break
                if row_covers[r2] < row_covers[r1]:
                    rows = rows - {r1}
                    changed = True
                    break
            if changed:
                break
        if changed:
            columns = {k: v & rows for k, v in columns.items() if v & rows}
    return columns, rows, True


def _independent_lower_bound(
    columns: dict[Hashable, frozenset], rows: frozenset
) -> int:
    """Greedy maximal set of pairwise column-disjoint rows."""
    row_covers = {
        r: frozenset(k for k, cells in columns.items() if r in cells) for r in rows
    }
    chosen_rows: list = []
    used: set = set()
    for r in sorted(rows, key=lambda r: (len(row_covers[r]), _stable_key(r))):
        if not (row_covers[r] & used):
            chosen_rows.append(r)
            used |= row_covers[r]
    return len(chosen_rows)


def _search(
    columns: dict[Hashable, frozenset],
    rows: frozenset,
    chosen: list[Hashable],
    incumbent: list[Hashable],
    budget: CoverBudget,
) -> list[Hashable]:
    if not budget.tick():
        return incumbent
    columns = dict(columns)
    chosen = list(chosen)
    columns, rows, _ = _reduce(columns, rows, chosen)
    if not rows:
        return chosen if len(chosen) < len(incumbent) else incumbent
    lb = len(chosen) + _independent_lower_bound(columns, rows)
    if lb >= len(incumbent):
        return incumbent
    # Branch on the hardest row (fewest covering columns), trying columns
    # by descending coverage.
    target = min(
        rows,
        key=lambda r: (
            sum(1 for cells in columns.values() if r in cells),
            _stable_key(r),
        ),
    )
    branches = sorted(
        (k for k, cells in columns.items() if target in cells),
        key=lambda k: (-len(columns[k]), _stable_key(k)),
    )
    for k in branches:
        sub_rows = rows - columns[k]
        sub_cols = {
            kk: vv & sub_rows for kk, vv in columns.items() if kk != k and vv & sub_rows
        }
        cand = _search(sub_cols, sub_rows, chosen + [k], incumbent, budget)
        if len(cand) < len(incumbent):
            incumbent = cand
        if budget.exhausted:
            break
    return incumbent
