"""Sum-of-products covers.

An :class:`Sop` is an ordered list of :class:`~repro.boolf.cube.Cube`
products over a shared variable universe, optionally with variable names.
It is the exchange format between the minimizer, the bound constructions
and the SAT encoder: the paper manipulates target functions and lattice
functions exclusively in ISOP form.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.errors import DimensionError
from repro.boolf.cube import Cube
from repro.boolf.truthtable import TruthTable

__all__ = ["Sop"]


class Sop:
    """A disjunction of cubes (products) over ``num_vars`` variables."""

    __slots__ = ("cubes", "num_vars", "names")

    def __init__(
        self,
        cubes: Iterable[Cube],
        num_vars: int,
        names: Optional[Sequence[str]] = None,
    ) -> None:
        cubes = list(cubes)
        for cube in cubes:
            if cube.num_vars != num_vars:
                raise DimensionError(
                    f"cube universe {cube.num_vars} != sop universe {num_vars}"
                )
        self.cubes = cubes
        self.num_vars = num_vars
        self.names = list(names) if names is not None else None

    # ------------------------------------------------------------- builders
    @classmethod
    def zero(cls, num_vars: int, names: Optional[Sequence[str]] = None) -> "Sop":
        return cls([], num_vars, names)

    @classmethod
    def one(cls, num_vars: int, names: Optional[Sequence[str]] = None) -> "Sop":
        return cls([Cube.top(num_vars)], num_vars, names)

    @classmethod
    def from_string(cls, text: str, names: Optional[Sequence[str]] = None) -> "Sop":
        """Parse an SOP expression; see :mod:`repro.boolf.parse`."""
        from repro.boolf.parse import parse_sop

        return parse_sop(text, names)

    # ------------------------------------------------------------ accessors
    @property
    def num_products(self) -> int:
        return len(self.cubes)

    @property
    def degree(self) -> int:
        """Maximum number of literals over all products (0 for constants)."""
        return max((c.num_literals for c in self.cubes), default=0)

    @property
    def min_degree(self) -> int:
        """Minimum number of literals over all products."""
        return min((c.num_literals for c in self.cubes), default=0)

    @property
    def num_literals(self) -> int:
        """Total literal count across all products."""
        return sum(c.num_literals for c in self.cubes)

    def literal_set(self) -> set[tuple[int, bool]]:
        """All distinct ``(var, positive)`` literals used by the cover."""
        out: set[tuple[int, bool]] = set()
        for cube in self.cubes:
            out.update(cube.literals())
        return out

    def support(self) -> list[int]:
        sup = 0
        for cube in self.cubes:
            sup |= cube.support
        return [v for v in range(self.num_vars) if sup >> v & 1]

    def is_zero(self) -> bool:
        return not self.cubes

    def is_one(self) -> bool:
        return any(c.is_tautology() for c in self.cubes)

    # ----------------------------------------------------------- evaluation
    def evaluate(self, minterm: int) -> bool:
        return any(c.evaluate(minterm) for c in self.cubes)

    def to_truthtable(self) -> TruthTable:
        return TruthTable.from_cubes(self.cubes, self.num_vars)

    def equivalent(self, other: "Sop") -> bool:
        """Functional (not syntactic) equality."""
        if self.num_vars != other.num_vars:
            return False
        return self.to_truthtable() == other.to_truthtable()

    # ---------------------------------------------------------- refinement
    def absorbed(self) -> "Sop":
        """Remove cubes contained in another cube (single-cube absorption)."""
        kept: list[Cube] = []
        # Sorting by literal count puts potential absorbers first.
        for cube in sorted(set(self.cubes), key=lambda c: c.num_literals):
            if not any(k.contains(cube) for k in kept):
                kept.append(cube)
        return Sop(kept, self.num_vars, self.names)

    def irredundant(self) -> "Sop":
        """Remove cubes covered by the union of the others (exact check)."""
        tables = [TruthTable.from_cube(c).values for c in self.cubes]
        keep = list(range(len(self.cubes)))
        changed = True
        while changed:
            changed = False
            for i in list(keep):
                others = [tables[j] for j in keep if j != i]
                if others:
                    union = np.logical_or.reduce(others)
                else:
                    union = np.zeros_like(tables[i])
                if bool((~tables[i] | union).all()):
                    keep.remove(i)
                    changed = True
                    break
        return Sop([self.cubes[i] for i in keep], self.num_vars, self.names)

    def is_irredundant(self) -> bool:
        return len(self.irredundant().cubes) == len(self.cubes)

    def sorted(self) -> "Sop":
        """Deterministic canonical order (by literal count, then masks)."""
        return Sop(sorted(self.cubes), self.num_vars, self.names)

    # -------------------------------------------------------------- algebra
    def __or__(self, other: "Sop") -> "Sop":
        if self.num_vars != other.num_vars:
            raise DimensionError("sop universe mismatch")
        return Sop(self.cubes + other.cubes, self.num_vars, self.names)

    def dual(self, minimum: bool = True) -> "Sop":
        """Minimized SOP of the dual function ``f^D(x) = ~f(~x)``.

        With ``minimum=True`` (default) an exact minimum cover is computed
        when tractable; otherwise the Minato–Morreale ISOP is returned.
        """
        from repro.boolf.minimize import minimize

        dual_tt = self.to_truthtable().dual()
        return minimize(dual_tt, names=self.names, exact=minimum)

    def restricted_to(self, cube_indices: Sequence[int]) -> "Sop":
        """Sub-cover containing only the selected products."""
        return Sop([self.cubes[i] for i in cube_indices], self.num_vars, self.names)

    # -------------------------------------------------------------- dunders
    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __len__(self) -> int:
        return len(self.cubes)

    def __getitem__(self, idx: int) -> Cube:
        return self.cubes[idx]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Sop):
            return NotImplemented
        return self.num_vars == other.num_vars and self.cubes == other.cubes

    def __hash__(self) -> int:
        return hash((self.num_vars, tuple(self.cubes)))

    def to_string(self) -> str:
        if not self.cubes:
            return "0"
        return " + ".join(c.to_string(self.names) for c in self.cubes)

    def __repr__(self) -> str:
        return f"Sop({self.to_string()!r}, num_vars={self.num_vars})"
