"""Reading and writing espresso-format PLA files.

Supports the common subset of the Berkeley PLA format used by the LGSynth91
benchmarks: ``.i``, ``.o``, ``.p``, ``.ilb``, ``.ob``, ``.type fr|f``,
cube lines (``01-0 1-``), comments (``#``) and ``.e``.

``read_pla`` returns a :class:`PlaFile` holding, per output, the onset and
don't-care-set covers; :meth:`PlaFile.output_truthtable` tabulates a single
output.  ``write_pla`` emits a file espresso would accept.
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from typing import Optional, Sequence, TextIO, Union

from repro.errors import ParseError
from repro.boolf.cube import Cube
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable

__all__ = ["PlaFile", "read_pla", "write_pla"]

# Declared sizes beyond this are junk (or a denial-of-service attempt):
# the largest LGSynth91 PLAs stay in the hundreds of inputs/outputs.
_MAX_DECLARED = 1 << 16


@dataclass
class PlaFile:
    """Parsed PLA contents: per-output onset/dc covers over shared inputs."""

    num_inputs: int
    num_outputs: int
    input_names: list[str]
    output_names: list[str]
    onsets: list[list[Cube]] = field(default_factory=list)
    dcsets: list[list[Cube]] = field(default_factory=list)

    def output_sop(self, index: int) -> Sop:
        """Onset cover of one output (as written, not minimized)."""
        return Sop(self.onsets[index], self.num_inputs, self.input_names)

    def output_truthtable(self, index: int) -> TruthTable:
        return TruthTable.from_cubes(self.onsets[index], self.num_inputs)

    def output_dc_truthtable(self, index: int) -> TruthTable:
        dc = TruthTable.from_cubes(self.dcsets[index], self.num_inputs)
        # A minterm both asserted and don't-care counts as asserted.
        return dc - self.output_truthtable(index)


def _directive_count(parts: Sequence[str], line: str) -> int:
    """The single non-negative integer operand of ``.i``/``.o``/``.p``."""
    if len(parts) != 2:
        raise ParseError(
            f"directive {parts[0]!r} expects exactly one operand: {line!r}"
        )
    try:
        value = int(parts[1])
    except ValueError:
        raise ParseError(
            f"non-integer operand for {parts[0]!r}: {line!r}"
        ) from None
    if value < 0:
        raise ParseError(f"negative count for {parts[0]!r}: {line!r}")
    if value > _MAX_DECLARED:
        raise ParseError(
            f"declared size {value} for {parts[0]!r} exceeds the "
            f"{_MAX_DECLARED} limit"
        )
    return value


def read_pla(source: Union[str, TextIO]) -> PlaFile:
    """Parse PLA text (a string or an open file)."""
    if isinstance(source, str):
        source = io.StringIO(source)
    num_inputs: Optional[int] = None
    num_outputs: Optional[int] = None
    input_names: list[str] = []
    output_names: list[str] = []
    pla_type = "fr"
    cube_lines: list[tuple[str, str]] = []

    for raw in source:
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            parts = line.split()
            directive = parts[0]
            if directive == ".i":
                num_inputs = _directive_count(parts, line)
            elif directive == ".o":
                num_outputs = _directive_count(parts, line)
            elif directive == ".ilb":
                input_names = parts[1:]
            elif directive == ".ob":
                output_names = parts[1:]
            elif directive == ".p":
                _directive_count(parts, line)  # informative, but well-formed
            elif directive == ".type":
                if len(parts) != 2:
                    raise ParseError(
                        f".type expects exactly one operand: {line!r}"
                    )
                pla_type = parts[1]
                if pla_type not in ("f", "r", "fd", "fr", "fdr"):
                    raise ParseError(f"unsupported PLA type {pla_type!r}")
            elif directive == ".e" or directive == ".end":
                break
            else:
                # Unsupported directives (.mv, .phase, ...) are rejected
                # loudly rather than silently misread.
                raise ParseError(f"unsupported PLA directive {directive!r}")
            continue
        parts = line.split()
        if len(parts) == 1 and num_outputs == 0:
            cube_lines.append((parts[0], ""))
        elif len(parts) >= 2:
            cube_lines.append((parts[0], parts[1]))
        else:
            raise ParseError(f"malformed PLA cube line {line!r}")

    if num_inputs is None or num_outputs is None:
        raise ParseError("PLA file missing .i or .o directive")
    if not input_names:
        input_names = [f"x{i}" for i in range(num_inputs)]
    if not output_names:
        output_names = [f"f{i}" for i in range(num_outputs)]

    onsets: list[list[Cube]] = [[] for _ in range(num_outputs)]
    dcsets: list[list[Cube]] = [[] for _ in range(num_outputs)]
    for in_part, out_part in cube_lines:
        if len(in_part) != num_inputs:
            raise ParseError(f"cube {in_part!r} has wrong input arity")
        if len(out_part) != num_outputs:
            raise ParseError(f"cube output {out_part!r} has wrong arity")
        cube = _parse_input_cube(in_part, num_inputs)
        for o, ch in enumerate(out_part):
            if ch in "1":
                onsets[o].append(cube)
            elif ch in "-~2":
                dcsets[o].append(cube)
            elif ch in "0":
                # In type-f PLAs '0' just means "not asserted here"; in
                # type-fr it asserts membership in the offset, which the
                # dense-table reader realizes implicitly.
                continue
            else:
                raise ParseError(f"bad output character {ch!r}")
    del pla_type
    return PlaFile(
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        input_names=input_names,
        output_names=output_names,
        onsets=onsets,
        dcsets=dcsets,
    )


def _parse_input_cube(text: str, num_inputs: int) -> Cube:
    pos = neg = 0
    for i, ch in enumerate(text):
        if ch == "1":
            pos |= 1 << i
        elif ch == "0":
            neg |= 1 << i
        elif ch in "-~2":
            continue
        else:
            raise ParseError(f"bad input character {ch!r} in {text!r}")
    return Cube(pos, neg, num_inputs)


def write_pla(
    covers: Sequence[Sop],
    output_names: Optional[Sequence[str]] = None,
) -> str:
    """Serialize per-output onset covers to PLA text (type f)."""
    if not covers:
        raise ValueError("need at least one output cover")
    num_inputs = covers[0].num_vars
    for sop in covers:
        if sop.num_vars != num_inputs:
            raise ParseError("all outputs must share the input universe")
    input_names = covers[0].names or [f"x{i}" for i in range(num_inputs)]
    output_names = list(output_names or [f"f{i}" for i in range(len(covers))])

    lines = [f".i {num_inputs}", f".o {len(covers)}"]
    lines.append(".ilb " + " ".join(input_names))
    lines.append(".ob " + " ".join(output_names))
    rows: list[str] = []
    for o, sop in enumerate(covers):
        for cube in sop.cubes:
            in_part = "".join(
                "1" if cube.pos >> i & 1 else "0" if cube.neg >> i & 1 else "-"
                for i in range(num_inputs)
            )
            out_part = "".join("1" if k == o else "0" for k in range(len(covers)))
            rows.append(f"{in_part} {out_part}")
    lines.append(f".p {len(rows)}")
    lines.extend(rows)
    lines.append(".e")
    return "\n".join(lines) + "\n"
