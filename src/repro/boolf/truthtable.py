"""Dense truth tables backed by numpy boolean arrays.

A :class:`TruthTable` over ``r`` variables stores the function value for all
``2**r`` input vectors.  Minterm *i* encodes the assignment where bit *j* of
*i* is the value of variable *j* (variable 0 is the least significant bit).

Dense tables are the workhorse representation for this library: every
benchmark function in the paper has at most 11 inputs, so tables stay below
2048 entries and numpy vectorization keeps all operations effectively free.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Sequence

import numpy as np

from repro.errors import DimensionError
from repro.boolf.cube import Cube

__all__ = ["TruthTable"]

_MAX_VARS = 24  # 16M entries; a deliberate guard against accidental blowups

# ------------------------------------------------------- int-packed kernels
# A table over n variables fits in one Python int of 2**n bits (bit m =
# value at minterm m).  Arbitrary-precision AND/OR on that single int
# beats allocating an np.arange(2**n) index vector per call, which is
# what the cube operations below used to do.  The masks only exist
# transiently; the public representation stays the numpy bool array.

_VAR_PATTERN_CACHE: dict[tuple[int, int], int] = {}


def _var_pattern(var: int, num_vars: int) -> int:
    """The projection ``x_var`` as a 2**num_vars-bit mask (bit m set iff
    bit ``var`` of m is set) — 0xAAAA.., 0xCCCC.., 0xF0F0.. patterns,
    built by doubling instead of an index-vector comparison."""
    key = (var, num_vars)
    cached = _VAR_PATTERN_CACHE.get(key)
    if cached is not None:
        return cached
    block = 1 << var
    pattern = ((1 << block) - 1) << block  # [block zeros][block ones]
    span = block << 1
    total = 1 << num_vars
    while span < total:
        pattern |= pattern << span
        span <<= 1
    _VAR_PATTERN_CACHE[key] = pattern
    return pattern


def _cube_bits(pos: int, neg: int, num_vars: int) -> int:
    """Characteristic mask of the cube ``(pos, neg)`` over ``num_vars``."""
    acc = (1 << (1 << num_vars)) - 1
    lits = pos | neg
    var = 0
    while lits:
        if lits & 1:
            pattern = _var_pattern(var, num_vars)
            acc = acc & pattern if pos >> var & 1 else acc ^ (acc & pattern)
        lits >>= 1
        var += 1
    return acc


def _mask_to_array(mask: int, num_vars: int) -> np.ndarray:
    size = 1 << num_vars
    buf = mask.to_bytes((size + 7) // 8, "little")
    bits = np.unpackbits(np.frombuffer(buf, dtype=np.uint8), bitorder="little")
    return bits[:size].astype(bool)


def _array_to_mask(values: np.ndarray) -> int:
    return int.from_bytes(
        np.packbits(values, bitorder="little").tobytes(), "little"
    )


class TruthTable:
    """A completely specified Boolean function of ``num_vars`` inputs."""

    __slots__ = ("values", "num_vars")

    def __init__(self, values: np.ndarray, num_vars: int) -> None:
        if num_vars < 0 or num_vars > _MAX_VARS:
            raise DimensionError(f"num_vars out of range: {num_vars}")
        values = np.asarray(values, dtype=bool)
        if values.shape != (1 << num_vars,):
            raise DimensionError(
                f"expected {1 << num_vars} entries, got shape {values.shape}"
            )
        self.values = values
        self.num_vars = num_vars

    # ------------------------------------------------------------- builders
    @classmethod
    def zeros(cls, num_vars: int) -> "TruthTable":
        return cls(np.zeros(1 << num_vars, dtype=bool), num_vars)

    @classmethod
    def ones(cls, num_vars: int) -> "TruthTable":
        return cls(np.ones(1 << num_vars, dtype=bool), num_vars)

    @classmethod
    def variable(cls, var: int, num_vars: int) -> "TruthTable":
        """The projection function ``f(x) = x_var``."""
        idx = np.arange(1 << num_vars, dtype=np.int64)
        return cls((idx >> var & 1).astype(bool), num_vars)

    @classmethod
    def from_minterms(cls, minterms: Iterable[int], num_vars: int) -> "TruthTable":
        values = np.zeros(1 << num_vars, dtype=bool)
        for m in minterms:
            values[m] = True
        return cls(values, num_vars)

    @classmethod
    def from_cube(cls, cube: Cube) -> "TruthTable":
        hit = _cube_bits(cube.pos, cube.neg, cube.num_vars)
        return cls(_mask_to_array(hit, cube.num_vars), cube.num_vars)

    @classmethod
    def from_cubes(cls, cubes: Sequence[Cube], num_vars: int) -> "TruthTable":
        acc = 0
        for cube in cubes:
            if cube.num_vars != num_vars:
                raise DimensionError("cube universe mismatch")
            acc |= _cube_bits(cube.pos, cube.neg, num_vars)
        return cls(_mask_to_array(acc, num_vars), num_vars)

    @classmethod
    def from_function(
        cls, fn: Callable[[tuple[int, ...]], object], num_vars: int
    ) -> "TruthTable":
        """Tabulate ``fn`` which receives a tuple of 0/1 variable values."""
        values = np.zeros(1 << num_vars, dtype=bool)
        for m in range(1 << num_vars):
            bits = tuple(m >> j & 1 for j in range(num_vars))
            values[m] = bool(fn(bits))
        return cls(values, num_vars)

    @classmethod
    def random(
        cls, num_vars: int, rng: np.random.Generator, density: float = 0.5
    ) -> "TruthTable":
        return cls(rng.random(1 << num_vars) < density, num_vars)

    # ------------------------------------------------------------ accessors
    def evaluate(self, minterm: int) -> bool:
        return bool(self.values[minterm])

    def onset(self) -> list[int]:
        """Minterms where the function is 1."""
        return np.flatnonzero(self.values).tolist()

    def offset(self) -> list[int]:
        """Minterms where the function is 0."""
        return np.flatnonzero(~self.values).tolist()

    def count_ones(self) -> int:
        return int(self.values.sum())

    def is_zero(self) -> bool:
        return not self.values.any()

    def is_one(self) -> bool:
        return bool(self.values.all())

    def depends_on(self, var: int) -> bool:
        """True iff the function value changes with variable ``var``."""
        c0 = self.cofactor(var, False)
        c1 = self.cofactor(var, True)
        return bool((c0.values != c1.values).any())

    def support(self) -> list[int]:
        """Variables the function actually depends on."""
        return [v for v in range(self.num_vars) if self.depends_on(v)]

    # ----------------------------------------------------------- operations
    def cofactor(self, var: int, value: bool) -> "TruthTable":
        """Shannon cofactor; the result has ``num_vars - 1`` variables.

        Remaining variables keep their relative order: former variable *w*
        becomes *w* if ``w < var`` else ``w - 1``.
        """
        if not 0 <= var < self.num_vars:
            raise DimensionError(f"variable {var} out of range")
        block = 1 << var
        reshaped = self.values.reshape(-1, 2, block)
        return TruthTable(
            reshaped[:, 1 if value else 0, :].reshape(-1), self.num_vars - 1
        )

    def restrict(self, var: int, value: bool) -> "TruthTable":
        """Like :meth:`cofactor` but keeps the variable universe unchanged."""
        cof = self.cofactor(var, value)
        block = 1 << var
        tiled = np.repeat(cof.values.reshape(-1, 1, block), 2, axis=1)
        return TruthTable(tiled.reshape(-1), self.num_vars)

    def compose_complement_inputs(self) -> "TruthTable":
        """``g(x) = f(~x)``: reverse the table (index complement)."""
        return TruthTable(self.values[::-1].copy(), self.num_vars)

    def dual(self) -> "TruthTable":
        """The dual function ``f^D(x) = ~f(~x)``."""
        return TruthTable(~self.values[::-1], self.num_vars)

    def lift(self, num_vars: int) -> "TruthTable":
        """Extend to a larger universe; new variables are don't-cares."""
        if num_vars < self.num_vars:
            raise DimensionError("cannot drop variables with lift()")
        reps = 1 << (num_vars - self.num_vars)
        return TruthTable(np.tile(self.values, reps), num_vars)

    def permute(self, perm: Sequence[int]) -> "TruthTable":
        """Rename variables: new variable ``perm[v]`` takes old ``v``'s role."""
        if sorted(perm) != list(range(self.num_vars)):
            raise DimensionError(f"not a permutation: {perm}")
        idx = np.arange(1 << self.num_vars, dtype=np.int64)
        src = np.zeros_like(idx)
        for old, new in enumerate(perm):
            src |= (idx >> new & 1) << old
        return TruthTable(self.values[src], self.num_vars)

    def cube_is_implicant(self, cube: Cube) -> bool:
        """True iff every minterm of ``cube`` is in the onset."""
        hit = _cube_bits(cube.pos, cube.neg, self.num_vars)
        return hit & _array_to_mask(self.values) == hit

    # -------------------------------------------------------------- algebra
    def _check(self, other: "TruthTable") -> None:
        if self.num_vars != other.num_vars:
            raise DimensionError(
                f"truth table universes differ: {self.num_vars} vs {other.num_vars}"
            )

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.values & other.values, self.num_vars)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.values | other.values, self.num_vars)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.values ^ other.values, self.num_vars)

    def __invert__(self) -> "TruthTable":
        return TruthTable(~self.values, self.num_vars)

    def __sub__(self, other: "TruthTable") -> "TruthTable":
        self._check(other)
        return TruthTable(self.values & ~other.values, self.num_vars)

    def implies(self, other: "TruthTable") -> bool:
        self._check(other)
        return bool((~self.values | other.values).all())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TruthTable):
            return NotImplemented
        return self.num_vars == other.num_vars and bool(
            (self.values == other.values).all()
        )

    def __hash__(self) -> int:
        return hash((self.num_vars, self.values.tobytes()))

    def __iter__(self) -> Iterator[bool]:
        return iter(bool(v) for v in self.values)

    def key(self) -> bytes:
        """Canonical bytes key (packed bits) for memoization."""
        return np.packbits(self.values).tobytes()

    def __repr__(self) -> str:
        if self.num_vars <= 6:
            bits = "".join("1" if v else "0" for v in self.values)
            return f"TruthTable({bits!r}, num_vars={self.num_vars})"
        return (
            f"TruthTable(num_vars={self.num_vars}, ones={self.count_ones()}"
            f"/{1 << self.num_vars})"
        )
