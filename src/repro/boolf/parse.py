"""Parsing of SOP expressions.

Grammar (whitespace-insensitive)::

    sop      := product ('+' product)*  |  '0'  |  '1'
    product  := literal+ ( '*' literal )*      # '*' / '&' optional
    literal  := NAME | NAME "'" | '~' NAME | '!' NAME

Without an explicit name list, single lowercase letters ``a..z`` are
variables and juxtaposition (``ab'c``) is conjunction — matching the
notation the paper uses (e.g. ``f = cd + c'd' + abe + a'b'e'``).  With an
explicit ``names`` list, multi-character names are allowed but must be
separated by ``*``, ``&`` or whitespace.
"""

from __future__ import annotations

import re
from typing import Optional, Sequence

from repro.errors import ParseError
from repro.boolf.cube import Cube
from repro.boolf.sop import Sop

__all__ = ["parse_sop"]

_NEGATORS = ("~", "!")


def parse_sop(text: str, names: Optional[Sequence[str]] = None) -> Sop:
    """Parse an SOP expression into an :class:`~repro.boolf.sop.Sop`."""
    stripped = text.strip()
    if not stripped:
        raise ParseError("empty expression")

    if names is None:
        used = sorted(set(re.findall(r"[a-z]", stripped)))
        if stripped in {"0", "1"}:
            used = used or []
        name_list = used
    else:
        name_list = list(names)
    num_vars = len(name_list)

    if stripped == "0":
        return Sop.zero(num_vars, name_list)
    if stripped == "1":
        return Sop.one(num_vars, name_list)

    cubes = []
    for chunk in stripped.split("+"):
        cubes.append(_parse_product(chunk.strip(), name_list))
    return Sop(cubes, num_vars, name_list)


def _parse_product(chunk: str, names: list[str]) -> Cube:
    if not chunk:
        raise ParseError("empty product between '+' signs")
    if chunk == "1":
        return Cube.top(len(names))
    tokens = _tokenize(chunk, names)
    pos = neg = 0
    for var, positive in tokens:
        bit = 1 << var
        if positive:
            if neg & bit:
                raise ParseError(f"contradictory literals for {names[var]!r}")
            pos |= bit
        else:
            if pos & bit:
                raise ParseError(f"contradictory literals for {names[var]!r}")
            neg |= bit
    return Cube(pos, neg, len(names))


def _tokenize(chunk: str, names: list[str]) -> list[tuple[int, bool]]:
    # Multi-character names need separators; single-letter names may be
    # juxtaposed.  Handle both by scanning greedily for the longest name.
    out: list[tuple[int, bool]] = []
    i = 0
    by_length = sorted(names, key=len, reverse=True)
    while i < len(chunk):
        ch = chunk[i]
        if ch in " \t*&.":
            i += 1
            continue
        negate = False
        if ch in _NEGATORS:
            negate = True
            i += 1
            while i < len(chunk) and chunk[i] in " \t":
                i += 1
            if i >= len(chunk):
                raise ParseError(f"dangling negation in {chunk!r}")
        match = None
        for name in by_length:
            if chunk.startswith(name, i):
                match = name
                break
        if match is None:
            raise ParseError(f"unknown variable at {chunk[i:]!r} (names: {names})")
        i += len(match)
        positive = not negate
        if i < len(chunk) and chunk[i] == "'":
            positive = not positive
            i += 1
        out.append((names.index(match), positive))
    if not out:
        raise ParseError(f"no literals in product {chunk!r}")
    return out
