"""Cubes (products of literals) over a fixed variable set.

A :class:`Cube` represents a conjunction of literals over variables indexed
``0 .. num_vars - 1``.  It is stored as a pair of bitmasks:

* ``pos`` — bit *i* set means the positive literal ``x_i`` appears,
* ``neg`` — bit *i* set means the negated literal ``~x_i`` appears.

A minterm is identified with the integer whose bit *i* holds the value of
variable *i*; :meth:`Cube.evaluate` tests membership of a minterm in the
cube.  The all-don't-care cube (``pos == neg == 0``) is the constant-1
product (tautology).

Cubes are immutable, hashable and totally ordered (by ``(pos, neg)``) so
they can live in sets and sorted lists deterministically.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional

from repro.errors import DimensionError

__all__ = ["Cube", "literal_name", "parse_literal"]


def literal_name(var: int, positive: bool, names: Optional[list[str]] = None) -> str:
    """Render literal ``var`` as text, e.g. ``a`` or ``a'``.

    ``names`` optionally supplies variable names; the default is
    ``a, b, c, ...`` for the first 26 variables and ``x<i>`` beyond.
    """
    if names is not None and var < len(names):
        base = names[var]
    elif var < 26:
        base = chr(ord("a") + var)
    else:
        base = f"x{var}"
    return base if positive else base + "'"


def parse_literal(token: str, names: list[str]) -> tuple[int, bool]:
    """Parse a literal token like ``a`` / ``a'`` / ``~a`` into (var, positive).

    The variable must already be listed in ``names``.
    """
    token = token.strip()
    positive = True
    if token.startswith("~") or token.startswith("!"):
        positive = False
        token = token[1:]
    if token.endswith("'"):
        positive = not positive
        token = token[:-1]
    if token not in names:
        raise DimensionError(f"unknown variable {token!r}; known: {names}")
    return names.index(token), positive


class Cube:
    """An immutable product of literals over ``num_vars`` variables."""

    __slots__ = ("pos", "neg", "num_vars")

    def __init__(self, pos: int, neg: int, num_vars: int) -> None:
        if pos & neg:
            raise ValueError(
                f"cube has contradictory literals: pos={pos:b} neg={neg:b}"
            )
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        mask = (1 << num_vars) - 1
        if (pos | neg) & ~mask:
            raise DimensionError(
                f"literal masks exceed num_vars={num_vars}: pos={pos:b} neg={neg:b}"
            )
        object.__setattr__(self, "pos", pos)
        object.__setattr__(self, "neg", neg)
        object.__setattr__(self, "num_vars", num_vars)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Cube is immutable")

    def __reduce__(self):
        # The immutability guard breaks pickle's default slot restoration;
        # rebuild through the constructor instead (cubes cross process
        # boundaries inside the parallel engine's solve requests).
        return (Cube, (self.pos, self.neg, self.num_vars))

    # ------------------------------------------------------------- builders
    @classmethod
    def top(cls, num_vars: int) -> "Cube":
        """The constant-1 cube (no literals)."""
        return cls(0, 0, num_vars)

    @classmethod
    def from_literals(
        cls, literals: Iterable[tuple[int, bool]], num_vars: int
    ) -> "Cube":
        """Build a cube from ``(var, positive)`` pairs."""
        pos = neg = 0
        for var, positive in literals:
            if positive:
                pos |= 1 << var
            else:
                neg |= 1 << var
        return cls(pos, neg, num_vars)

    @classmethod
    def from_minterm(cls, minterm: int, num_vars: int) -> "Cube":
        """The cube containing exactly one minterm."""
        mask = (1 << num_vars) - 1
        return cls(minterm & mask, ~minterm & mask, num_vars)

    # ------------------------------------------------------------ accessors
    @property
    def support(self) -> int:
        """Bitmask of variables appearing in the cube."""
        return self.pos | self.neg

    @property
    def num_literals(self) -> int:
        """Number of literals in the product (its *degree* contribution)."""
        return (self.pos | self.neg).bit_count()

    def literals(self) -> Iterator[tuple[int, bool]]:
        """Yield ``(var, positive)`` pairs in increasing variable order."""
        sup = self.pos | self.neg
        var = 0
        while sup:
            if sup & 1:
                yield var, bool(self.pos >> var & 1)
            sup >>= 1
            var += 1

    def is_tautology(self) -> bool:
        return not (self.pos | self.neg)

    # ----------------------------------------------------------- operations
    def evaluate(self, minterm: int) -> bool:
        """True iff the minterm (bit *i* = value of var *i*) lies in the cube."""
        return (minterm & self.pos) == self.pos and not (minterm & self.neg)

    def contains(self, other: "Cube") -> bool:
        """Set containment: every minterm of ``other`` is in ``self``.

        Equivalently, ``self``'s literal set is a subset of ``other``'s.
        """
        self._check(other)
        return (self.pos & other.pos) == self.pos and (
            self.neg & other.neg
        ) == self.neg

    def intersects(self, other: "Cube") -> bool:
        """True iff the two cubes share at least one minterm."""
        self._check(other)
        return not (self.pos & other.neg) and not (self.neg & other.pos)

    def intersection(self, other: "Cube") -> Optional["Cube"]:
        """The cube of common minterms, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Cube(self.pos | other.pos, self.neg | other.neg, self.num_vars)

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both operands."""
        self._check(other)
        return Cube(self.pos & other.pos, self.neg & other.neg, self.num_vars)

    def cofactor(self, var: int, value: bool) -> Optional["Cube"]:
        """Cube restricted to ``x_var = value``; ``None`` if it vanishes."""
        bit = 1 << var
        if value:
            if self.neg & bit:
                return None
            return Cube(self.pos & ~bit, self.neg, self.num_vars)
        if self.pos & bit:
            return None
        return Cube(self.pos, self.neg & ~bit, self.num_vars)

    def without(self, var: int) -> "Cube":
        """Drop any literal of ``var`` from the cube."""
        bit = ~(1 << var)
        return Cube(self.pos & bit, self.neg & bit, self.num_vars)

    def distance(self, other: "Cube") -> int:
        """Number of variables in which the cubes have opposing literals."""
        self._check(other)
        return ((self.pos & other.neg) | (self.neg & other.pos)).bit_count()

    def consensus(self, other: "Cube") -> Optional["Cube"]:
        """Consensus term when the cubes conflict in exactly one variable."""
        clash = (self.pos & other.neg) | (self.neg & other.pos)
        if clash.bit_count() != 1:
            return None
        return Cube(
            (self.pos | other.pos) & ~clash,
            (self.neg | other.neg) & ~clash,
            self.num_vars,
        )

    def minterms(self) -> Iterator[int]:
        """Yield every minterm contained in the cube (2**free_vars of them).

        Enumerates submasks of the free-variable mask directly with the
        ``(sub - free) & free`` bit trick — no per-bit reassembly loop —
        in increasing numeric order (the same order the old
        combo-expansion produced, so downstream iteration is unchanged).
        """
        mask = (1 << self.num_vars) - 1
        free = mask & ~(self.pos | self.neg)
        base = self.pos
        sub = 0
        while True:
            yield base | sub
            if sub == free:
                return
            sub = (sub - free) & free

    def size(self) -> int:
        """Number of minterms contained in the cube."""
        return 1 << (self.num_vars - self.num_literals)

    def complement_literals(self) -> "Cube":
        """Cube with every literal polarity flipped (NOT the set complement)."""
        return Cube(self.neg, self.pos, self.num_vars)

    def lift(self, num_vars: int) -> "Cube":
        """Reinterpret the cube over a larger variable universe."""
        if num_vars < self.num_vars:
            raise DimensionError("cannot shrink a cube's variable universe")
        return Cube(self.pos, self.neg, num_vars)

    # -------------------------------------------------------------- dunders
    def _check(self, other: "Cube") -> None:
        if self.num_vars != other.num_vars:
            raise DimensionError(
                f"cube universes differ: {self.num_vars} vs {other.num_vars}"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cube):
            return NotImplemented
        return (
            self.pos == other.pos
            and self.neg == other.neg
            and self.num_vars == other.num_vars
        )

    def __lt__(self, other: "Cube") -> bool:
        self._check(other)
        return (self.num_literals, self.pos, self.neg) < (
            other.num_literals,
            other.pos,
            other.neg,
        )

    def __hash__(self) -> int:
        return hash((self.pos, self.neg, self.num_vars))

    def to_string(self, names: Optional[list[str]] = None) -> str:
        if self.is_tautology():
            return "1"
        return "".join(
            literal_name(v, positive, names) for v, positive in self.literals()
        )

    def __repr__(self) -> str:
        return f"Cube({self.to_string()!r}, num_vars={self.num_vars})"
