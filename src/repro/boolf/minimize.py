"""Two-level logic minimization (the library's espresso stand-in).

The paper feeds JANUS target functions "with a minimum number of products
obtained using a logic minimization tool ... in ISOP form".  This module
provides that contract:

* :func:`minimize` — exact minimum-cardinality prime cover when tractable
  (Quine–McCluskey primes + branch-and-bound unate covering), degrading to
  an espresso-style heuristic and finally to the Minato–Morreale ISOP.
* :func:`espresso_lite` — EXPAND-to-prime + exact IRREDUNDANT pass over an
  existing cover.
* :func:`exact_min_sop` — the exact path, raising if it would blow up.

Every result is an irredundant cover of primes, functionally equal to the
input (asserted in tests).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.boolf.cover import CoverBudget, min_cover
from repro.boolf.cube import Cube
from repro.boolf.isop import isop_interval
from repro.boolf.primes import prime_implicants
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable

__all__ = ["minimize", "exact_min_sop", "espresso_lite"]

# QM + exact covering is attempted only below these sizes; beyond them the
# espresso-style heuristic takes over.  Both limits are far above anything
# the DATE-2019 benchmark suite needs.
_EXACT_MAX_VARS = 14
_EXACT_MAX_PRIMES = 4000
_EXACT_MAX_MINTERMS = 8192


def minimize(
    tt: TruthTable,
    dc: Optional[TruthTable] = None,
    names: Optional[Sequence[str]] = None,
    exact: bool = True,
    budget: Optional[CoverBudget] = None,
) -> Sop:
    """Minimum (or near-minimum) irredundant prime cover of ``tt``.

    ``dc`` optionally marks don't-care minterms.  With ``exact=True`` the
    result has the true minimum number of products whenever the instance
    fits the internal limits; otherwise a heuristic cover is returned.
    """
    num_vars = tt.num_vars
    care_on = tt if dc is None else tt
    if dc is not None and (tt.values & dc.values).any():
        raise ValueError("onset and don't-care set overlap")
    if care_on.is_zero():
        return Sop.zero(num_vars, names)
    upper = tt if dc is None else tt | dc
    if upper.is_one():
        return Sop.one(num_vars, names)

    if exact and _exact_feasible(tt, dc):
        try:
            return exact_min_sop(tt, dc, names, budget)
        except MemoryError:  # pragma: no cover - defensive
            pass
    # Heuristic path: the full espresso loop (EXPAND / IRREDUNDANT /
    # ESSENTIALS / REDUCE / LASTGASP), which includes espresso_lite's
    # single pass as its first iteration.
    from repro.boolf.espresso import espresso

    return espresso(tt, dc, names)


def _exact_feasible(tt: TruthTable, dc: Optional[TruthTable]) -> bool:
    if tt.num_vars > _EXACT_MAX_VARS:
        return False
    if tt.count_ones() > _EXACT_MAX_MINTERMS:
        return False
    return True


def exact_min_sop(
    tt: TruthTable,
    dc: Optional[TruthTable] = None,
    names: Optional[Sequence[str]] = None,
    budget: Optional[CoverBudget] = None,
) -> Sop:
    """Exact minimum-cardinality prime cover via QM + unate covering.

    Raises ``ValueError`` when the prime set exceeds the internal limit;
    callers should then fall back to :func:`minimize` with ``exact=False``.
    """
    primes = prime_implicants(tt, dc)
    if len(primes) > _EXACT_MAX_PRIMES:
        raise ValueError(
            f"{len(primes)} primes exceed the exact-minimization limit"
        )
    onset = frozenset(tt.onset())
    columns = {
        i: frozenset(m for m in cube.minterms() if m in onset)
        for i, cube in enumerate(primes)
    }
    columns = {i: cells for i, cells in columns.items() if cells}
    chosen = min_cover(columns, onset, budget)
    cubes = sorted(primes[i] for i in chosen)
    cubes = _prefer_fewer_literals(cubes, primes, tt, dc)
    return Sop(cubes, tt.num_vars, names)


def _prefer_fewer_literals(
    cubes: list[Cube],
    primes: list[Cube],
    tt: TruthTable,
    dc: Optional[TruthTable],
) -> list[Cube]:
    """Secondary objective: swap any cube for an equal-coverage prime with
    fewer literals (keeps cardinality optimal, trims literal count)."""
    out = list(cubes)
    cover_tt = TruthTable.from_cubes(out, tt.num_vars)
    for idx, cube in enumerate(out):
        rest = out[:idx] + out[idx + 1 :]
        rest_tt = TruthTable.from_cubes(rest, tt.num_vars)
        needed = tt - rest_tt
        for cand in primes:
            if cand.num_literals < out[idx].num_literals and TruthTable.from_cube(
                cand
            ).implies(tt if dc is None else tt | dc):
                if needed.implies(TruthTable.from_cube(cand)):
                    out[idx] = cand
                    break
    # Result must still cover tt exactly (within dc): assert cheaply.
    final = TruthTable.from_cubes(out, tt.num_vars)
    if not (tt.implies(final) and final.implies(tt if dc is None else tt | dc)):
        return list(cubes)
    return sorted(out)


def espresso_lite(
    cover: Sop, tt: TruthTable, dc: Optional[TruthTable] = None
) -> Sop:
    """EXPAND each cube to a prime, then take an exact irredundant subset.

    The cover must satisfy ``tt <= cover <= tt | dc`` on entry; the same
    holds on exit with every cube prime and no cube removable.
    """
    upper = tt if dc is None else tt | dc
    expanded: list[Cube] = []
    seen: set[Cube] = set()
    for cube in cover.cubes:
        prime = _expand_to_prime(cube, upper)
        if prime not in seen:
            seen.add(prime)
            expanded.append(prime)
    # Exact irredundant via covering: keep a minimum subset of the expanded
    # primes that still covers the onset.
    onset = frozenset(tt.onset())
    columns = {
        i: frozenset(m for m in cube.minterms() if m in onset)
        for i, cube in enumerate(expanded)
    }
    columns = {i: cells for i, cells in columns.items() if cells}
    chosen = min_cover(columns, onset, CoverBudget(max_nodes=20_000))
    return Sop(sorted(expanded[i] for i in chosen), tt.num_vars, cover.names)


def _expand_to_prime(cube: Cube, upper: TruthTable) -> Cube:
    """Greedily drop literals while the cube stays inside ``upper``."""
    current = cube
    improved = True
    while improved:
        improved = False
        for var, _positive in list(current.literals()):
            cand = current.without(var)
            if upper.cube_is_implicant(cand):
                current = cand
                improved = True
    return current
