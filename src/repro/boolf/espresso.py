"""The full espresso iteration: EXPAND / IRREDUNDANT / ESSENTIALS /
REDUCE / LASTGASP.

:func:`repro.boolf.minimize.espresso_lite` stops after one
EXPAND + IRREDUNDANT pass.  This module adds the remaining espresso
machinery (Brayton et al., *Logic Minimization Algorithms for VLSI
Synthesis* — the paper's reference [12]) over the library's dense
truth-table representation:

* **ESSENTIALS** — primes covering an onset minterm no other prime
  covers are set aside and their coverage moved to the don't-care set;
* **REDUCE** — each cube is shrunk to the supercube of the onset part
  only it covers, freeing literals for the next EXPAND to climb to a
  *different* prime;
* **LASTGASP** — when an iteration stalls, every cube is maximally
  reduced *independently* (against the unreduced rest), re-expanded, and
  the new primes offered to the covering step once more.

The iteration is monotone in the cost ``(num_products, num_literals)``
and stops at the first pass that fails to improve it.  Every
intermediate cover satisfies ``tt <= cover <= tt | dc`` (asserted in
tests, property-based over random functions).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.boolf.cover import CoverBudget, min_cover
from repro.boolf.cube import Cube
from repro.boolf.isop import isop_interval
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable

__all__ = [
    "espresso",
    "expand_pass",
    "irredundant_pass",
    "reduce_pass",
    "essential_primes",
]


def _supercube_of_minterms(minterms: Sequence[int], num_vars: int) -> Cube:
    """Smallest cube containing all the given minterms."""
    ones = minterms[0]
    zeros = ~minterms[0]
    for m in minterms[1:]:
        ones &= m
        zeros &= ~m
    mask = (1 << num_vars) - 1
    return Cube(ones & mask, zeros & mask, num_vars)


def _expand_to_prime(cube: Cube, upper: TruthTable) -> Cube:
    """Greedily drop literals while the cube stays inside ``upper``.

    Literals are tried in variable order; espresso's weighting heuristics
    matter for quality on huge covers but not at this library's sizes.
    """
    current = cube
    improved = True
    while improved:
        improved = False
        for var, _positive in list(current.literals()):
            cand = current.without(var)
            if upper.cube_is_implicant(cand):
                current = cand
                improved = True
    return current


def expand_pass(cubes: list[Cube], upper: TruthTable) -> list[Cube]:
    """EXPAND every cube to a prime of ``upper``; drop duplicates and
    single-cube absorptions."""
    expanded: list[Cube] = []
    for cube in sorted(cubes, key=lambda c: -c.num_literals):
        prime = _expand_to_prime(cube, upper)
        if not any(kept.contains(prime) for kept in expanded):
            expanded = [k for k in expanded if not prime.contains(k)]
            expanded.append(prime)
    return expanded


def irredundant_pass(
    cubes: list[Cube],
    tt: TruthTable,
    budget: Optional[CoverBudget] = None,
) -> list[Cube]:
    """Minimum subset of ``cubes`` still covering the onset of ``tt``."""
    onset = frozenset(tt.onset())
    if not onset:
        return []
    columns = {
        i: frozenset(m for m in cube.minterms() if m in onset)
        for i, cube in enumerate(cubes)
    }
    columns = {i: cells for i, cells in columns.items() if cells}
    chosen = min_cover(columns, onset, budget or CoverBudget(max_nodes=20_000))
    return [cubes[i] for i in sorted(chosen)]


def essential_primes(cubes: list[Cube], tt: TruthTable) -> list[Cube]:
    """Primes covering some onset minterm that no other cube covers."""
    num_vars = tt.num_vars
    tables = [TruthTable.from_cube(c) for c in cubes]
    essentials: list[Cube] = []
    for i, cube in enumerate(cubes):
        others = TruthTable.zeros(num_vars)
        for j, table in enumerate(tables):
            if j != i:
                others = others | table
        alone = (tt & tables[i]) - others
        if not alone.is_zero():
            essentials.append(cube)
    return essentials


def reduce_pass(cubes: list[Cube], tt: TruthTable) -> list[Cube]:
    """REDUCE: shrink each cube to the supercube of the onset it alone
    covers (relative to the *current*, partially reduced cover).

    Cubes are processed largest-first (the classic heuristic); cubes made
    redundant along the way are dropped.
    """
    num_vars = tt.num_vars
    order = sorted(range(len(cubes)), key=lambda i: -cubes[i].size())
    current: dict[int, Cube] = dict(enumerate(cubes))
    for i in order:
        others = TruthTable.zeros(num_vars)
        for j, cube in current.items():
            if j != i:
                others = others | TruthTable.from_cube(cube)
        needed = (tt & TruthTable.from_cube(current[i])) - others
        minterms = needed.onset()
        if not minterms:
            del current[i]
            continue
        current[i] = _supercube_of_minterms(minterms, num_vars)
    return [current[i] for i in sorted(current)]


def _cost(cubes: list[Cube]) -> tuple[int, int]:
    return len(cubes), sum(c.num_literals for c in cubes)


def _lastgasp(
    cubes: list[Cube], tt: TruthTable, upper: TruthTable
) -> list[Cube]:
    """LASTGASP: maximal independent reductions, re-expanded, offered to
    the covering step together with the current cover."""
    num_vars = tt.num_vars
    tables = [TruthTable.from_cube(c) for c in cubes]
    fresh: list[Cube] = []
    for i in range(len(cubes)):
        others = TruthTable.zeros(num_vars)
        for j, table in enumerate(tables):
            if j != i:
                others = others | table
        needed = (tt & tables[i]) - others
        minterms = needed.onset()
        if not minterms:
            continue
        reduced = _supercube_of_minterms(minterms, num_vars)
        prime = _expand_to_prime(reduced, upper)
        if prime not in cubes and prime not in fresh:
            fresh.append(prime)
    if not fresh:
        return cubes
    return irredundant_pass(cubes + fresh, tt)


def espresso(
    tt: TruthTable,
    dc: Optional[TruthTable] = None,
    names: Optional[Sequence[str]] = None,
    max_loops: int = 10,
) -> Sop:
    """Full espresso loop; returns an irredundant cover of primes with
    ``tt <= cover <= tt | dc``.

    Not guaranteed minimum (espresso never is), but at this library's
    instance sizes it matches the exact minimizer on most functions —
    measured in ``tests/boolf/test_espresso.py``.
    """
    num_vars = tt.num_vars
    if dc is not None and (tt.values & dc.values).any():
        raise ValueError("onset and don't-care set overlap")
    upper = tt if dc is None else tt | dc
    if tt.is_zero():
        return Sop.zero(num_vars, names)
    if upper.is_one():
        return Sop.one(num_vars, names)

    cover = list(isop_interval(tt, upper, names).cubes)
    cover = expand_pass(cover, upper)
    cover = irredundant_pass(cover, tt)

    # Peel off essentials: they are in every prime cover built from this
    # prime set, so the loop only has to work on the remainder.
    essentials = essential_primes(cover, tt)
    if essentials:
        covered = TruthTable.from_cubes(essentials, num_vars)
        remainder_tt = tt - covered
        remainder_upper = upper  # essentials' area acts as don't-care
        cover = [c for c in cover if c not in essentials]
        cover = irredundant_pass(cover, remainder_tt)
    else:
        remainder_tt = tt
        remainder_upper = upper

    best = list(cover)
    best_cost = _cost(best)
    for _ in range(max_loops):
        cover = reduce_pass(cover, remainder_tt)
        cover = expand_pass(cover, remainder_upper)
        cover = irredundant_pass(cover, remainder_tt)
        cost = _cost(cover)
        if cost < best_cost:
            best, best_cost = list(cover), cost
            continue
        gasped = _lastgasp(best, remainder_tt, remainder_upper)
        if _cost(gasped) < best_cost:
            cover, best, best_cost = list(gasped), list(gasped), _cost(gasped)
            continue
        break

    return Sop(sorted(essentials + best), num_vars, names)
