"""Prime implicant generation (Quine–McCluskey).

``prime_implicants(on, dc)`` returns every prime implicant of the interval
``[on, on | dc]`` — cubes that are implicants of ``on | dc``, cover at least
one onset minterm, and cannot be expanded in any variable.

The implementation is the classic tabular method with implicants grouped by
popcount of their value part; suitable for the r <= 11 functions this
library targets.  For larger universes prefer :func:`repro.boolf.isop.isop`
which never enumerates the full prime set.
"""

from __future__ import annotations

from typing import Optional

from repro.boolf.cube import Cube
from repro.boolf.truthtable import TruthTable

__all__ = ["prime_implicants", "is_prime"]


def prime_implicants(
    on: TruthTable, dc: Optional[TruthTable] = None
) -> list[Cube]:
    """All primes of the incompletely specified function ``(on, dc)``."""
    num_vars = on.num_vars
    if dc is None:
        dc = TruthTable.zeros(num_vars)
    if dc.num_vars != num_vars:
        raise ValueError("on/dc universe mismatch")
    if (on.values & dc.values).any():
        raise ValueError("onset and don't-care set overlap")

    care_on = set(on.onset())
    allowed = on | dc
    if allowed.is_zero():
        return []
    if allowed.is_one() and care_on:
        return [Cube.top(num_vars)]

    # Implicants as (value, mask): mask bits are free variables; the cube
    # covers minterms m with (m & ~mask) == value.
    current: dict[tuple[int, int], bool] = {
        (m, 0): False for m in allowed.onset()
    }
    primes: list[Cube] = []
    full = (1 << num_vars) - 1

    while current:
        nxt: dict[tuple[int, int], bool] = {}
        combined: set[tuple[int, int]] = set()
        by_mask: dict[int, dict[int, list[int]]] = {}
        for value, mask in current:
            by_mask.setdefault(mask, {}).setdefault(value.bit_count(), []).append(
                value
            )
        for mask, groups in by_mask.items():
            for pc in sorted(groups):
                uppers = set(groups.get(pc + 1, ()))
                for value in groups[pc]:
                    free = full & ~mask
                    v = free
                    while v:
                        bit = v & -v
                        v ^= bit
                        mate = value | bit
                        if mate in uppers:
                            combined.add((value, mask))
                            combined.add((mate, mask))
                            nxt[(value, mask | bit)] = False
                    # also merge with same-popcount partner when bit already 1
                    # is impossible; handled via mate above.
        for key in current:
            if key not in combined:
                value, mask = key
                cube = _implicant_to_cube(value, mask, num_vars)
                if any(m in care_on for m in cube.minterms()):
                    primes.append(cube)
        current = nxt

    # Deduplicate (different merge orders can produce the same implicant).
    return sorted(set(primes))


def _implicant_to_cube(value: int, mask: int, num_vars: int) -> Cube:
    full = (1 << num_vars) - 1
    fixed = full & ~mask
    return Cube(value & fixed, fixed & ~value, num_vars)


def is_prime(cube: Cube, on: TruthTable, dc: Optional[TruthTable] = None) -> bool:
    """True iff ``cube`` is an implicant of ``on|dc`` that cannot expand."""
    allowed = on if dc is None else on | dc
    if not allowed.cube_is_implicant(cube):
        return False
    for var, _positive in cube.literals():
        if allowed.cube_is_implicant(cube.without(var)):
            return False
    return True
