"""Boolean-function substrate: cubes, covers, tables, minimization, I/O."""

from repro.boolf.cube import Cube
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable
from repro.boolf.isop import isop, isop_interval
from repro.boolf.primes import prime_implicants, is_prime
from repro.boolf.minimize import minimize, exact_min_sop, espresso_lite
from repro.boolf.espresso import espresso
from repro.boolf.parse import parse_sop
from repro.boolf.pla import PlaFile, read_pla, write_pla
from repro.boolf.gf2 import (
    dot,
    in_span,
    orthogonal_complement,
    rank,
    row_reduce,
    span_members,
)

__all__ = [
    "Cube",
    "Sop",
    "TruthTable",
    "isop",
    "isop_interval",
    "prime_implicants",
    "is_prime",
    "minimize",
    "exact_min_sop",
    "espresso_lite",
    "espresso",
    "parse_sop",
    "PlaFile",
    "read_pla",
    "write_pla",
    "dot",
    "row_reduce",
    "rank",
    "in_span",
    "orthogonal_complement",
    "span_members",
]
