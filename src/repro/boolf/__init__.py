"""Boolean-function substrate: cubes, covers, tables, minimization, I/O.

The representations everything above is built on:

* :class:`TruthTable` — dense bit-vector functions (the canonical form;
  cache keys and wire payloads serialize its packed bits);
* :class:`Cube` / :class:`Sop` — product terms and sum-of-products
  covers, with :func:`parse_sop` for the ``"ab + a'b'c"`` syntax the
  CLI and API accept;
* minimization — :func:`isop` (Minato–Morreale irredundant SOPs over
  function intervals), :func:`minimize` / ``exact_min_sop`` (exact
  two-level minimization), :func:`espresso` (heuristic);
* prime implicants, GF(2) linear algebra (for autosymmetry detection),
  and PLA file I/O (:func:`read_pla` / :func:`write_pla`).
"""

from repro.boolf.cube import Cube
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable
from repro.boolf.isop import isop, isop_interval
from repro.boolf.primes import prime_implicants, is_prime
from repro.boolf.minimize import minimize, exact_min_sop, espresso_lite
from repro.boolf.espresso import espresso
from repro.boolf.parse import parse_sop
from repro.boolf.pla import PlaFile, read_pla, write_pla
from repro.boolf.gf2 import (
    dot,
    in_span,
    orthogonal_complement,
    rank,
    row_reduce,
    span_members,
)

__all__ = [
    "Cube",
    "Sop",
    "TruthTable",
    "isop",
    "isop_interval",
    "prime_implicants",
    "is_prime",
    "minimize",
    "exact_min_sop",
    "espresso_lite",
    "espresso",
    "parse_sop",
    "PlaFile",
    "read_pla",
    "write_pla",
    "dot",
    "row_reduce",
    "rank",
    "in_span",
    "orthogonal_complement",
    "span_members",
]
