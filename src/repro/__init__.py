"""repro — JANUS: SAT-based approximate logic synthesis on switching lattices.

A from-scratch reproduction of Aksoy & Altun, *"A Satisfiability-Based
Approximate Algorithm for Logic Synthesis Using Switching Lattices"*
(DATE 2019), including every substrate the paper relies on: a CDCL SAT
solver, a two-level logic minimizer, the switching-lattice path machinery,
the LM-to-SAT encoder, the bound constructions, the JANUS dichotomic
search, JANUS-MF for multi-output functions, and the baseline algorithms
the paper compares against.

Quickstart (the stable public API lives in :mod:`repro.api`)::

    from repro.api import Session

    with Session() as session:
        response = session.synthesize("ab + a'b'c")
    print(response.shape)                    # e.g. "3x2"
    print(response.result.assignment.to_text())  # the switch grid
    print(response.to_json())                # the JSON wire form

The lower-level building blocks (truth tables, covers, the SAT solver,
the encoder, the raw search drivers) stay importable from their
subpackages for research use.
"""

import warnings as _warnings

from repro.boolf import Cube, Sop, TruthTable, isop, minimize, parse_sop
from repro.core import (
    EncodeOptions,
    JanusOptions,
    MultiFunctionResult,
    SynthesisResult,
    TargetSpec,
    approx_restricted,
    decompose_pcircuit,
    exact_search,
    heuristic_candidates,
    make_spec,
    solve_lm,
    synthesize_multi,
)
from repro.engine import ParallelEngine, ResultCache
from repro.lattice import CONST0, CONST1, Entry, Grid, LatticeAssignment
from repro.sat import CdclSolver, Cnf, SolveResult, solve_cnf
from repro.api import (
    BatchRequest,
    BatchResponse,
    RequestOptions,
    Session,
    SynthesisRequest,
    SynthesisResponse,
)

__version__ = "1.5.0"

__all__ = [
    "Cube",
    "Sop",
    "TruthTable",
    "isop",
    "minimize",
    "parse_sop",
    "TargetSpec",
    "JanusOptions",
    "EncodeOptions",
    "SynthesisResult",
    "MultiFunctionResult",
    "synthesize",
    "synthesize_multi",
    "solve_lm",
    "make_spec",
    "exact_search",
    "approx_restricted",
    "heuristic_candidates",
    "decompose_pcircuit",
    "Grid",
    "LatticeAssignment",
    "Entry",
    "CONST0",
    "CONST1",
    "CdclSolver",
    "Cnf",
    "SolveResult",
    "solve_cnf",
    "ParallelEngine",
    "ResultCache",
    "Session",
    "SynthesisRequest",
    "SynthesisResponse",
    "BatchRequest",
    "BatchResponse",
    "RequestOptions",
    "__version__",
]


def __getattr__(name: str):
    # Deprecation shim: the old top-level one-shot entry point.  It
    # still works (and still returns the same SynthesisResult the core
    # driver produces), but new code should go through repro.api, which
    # adds sessions, pluggable backends and the JSON wire schema.
    if name == "synthesize":
        _warnings.warn(
            "repro.synthesize is deprecated; use repro.api.Session / "
            "repro.api.synthesize (returns a SynthesisResponse with the "
            "result attached) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.core.janus import synthesize

        return synthesize
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
