"""repro — JANUS: SAT-based approximate logic synthesis on switching lattices.

A from-scratch reproduction of Aksoy & Altun, *"A Satisfiability-Based
Approximate Algorithm for Logic Synthesis Using Switching Lattices"*
(DATE 2019), including every substrate the paper relies on: a CDCL SAT
solver, a two-level logic minimizer, the switching-lattice path machinery,
the LM-to-SAT encoder, the bound constructions, the JANUS dichotomic
search, JANUS-MF for multi-output functions, and the baseline algorithms
the paper compares against.

Quickstart::

    import repro

    result = repro.synthesize("ab + a'b'c")
    print(result.shape)                      # e.g. "3x3"
    print(result.assignment.to_text())       # the switch assignment grid
"""

from repro.boolf import Cube, Sop, TruthTable, isop, minimize, parse_sop
from repro.core import (
    EncodeOptions,
    JanusOptions,
    MultiFunctionResult,
    SynthesisResult,
    TargetSpec,
    approx_restricted,
    decompose_pcircuit,
    exact_search,
    heuristic_candidates,
    make_spec,
    solve_lm,
    synthesize,
    synthesize_multi,
)
from repro.engine import ParallelEngine, ResultCache
from repro.lattice import CONST0, CONST1, Entry, Grid, LatticeAssignment
from repro.sat import CdclSolver, Cnf, SolveResult, solve_cnf

__version__ = "1.0.0"

__all__ = [
    "Cube",
    "Sop",
    "TruthTable",
    "isop",
    "minimize",
    "parse_sop",
    "TargetSpec",
    "JanusOptions",
    "EncodeOptions",
    "SynthesisResult",
    "MultiFunctionResult",
    "synthesize",
    "synthesize_multi",
    "solve_lm",
    "make_spec",
    "exact_search",
    "approx_restricted",
    "heuristic_candidates",
    "decompose_pcircuit",
    "Grid",
    "LatticeAssignment",
    "Entry",
    "CONST0",
    "CONST1",
    "CdclSolver",
    "Cnf",
    "SolveResult",
    "solve_cnf",
    "ParallelEngine",
    "ResultCache",
    "__version__",
]
