"""JANUS-MF: multiple functions on a single lattice (paper, Section III-C).

Part 1 (the paper's *straight-forward method*): run JANUS per output and
stack the solutions side by side, each separated by a constant-0 isolation
column and padded at the bottom with constant 1.  The combined lattice has
one marked column range per output; function ``k`` is read between the top
and bottom plates of its column range (the 0-columns keep ranges
independent).

Part 2 (JANUS-MF proper): as in the DS method's third step, re-synthesize
every output on lattices with fewer rows (minimal width each) while the
total shrinks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.errors import SynthesisError
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable
from repro.core.janus import (
    JanusOptions,
    fit_columns,
    make_spec,
    synthesize,
)
from repro.core.target import TargetSpec
from repro.lattice.assignment import CONST0, CONST1, LatticeAssignment

__all__ = ["MultiFunctionResult", "synthesize_multi", "merge_straightforward"]


@dataclass
class MultiFunctionResult:
    """A shared lattice realizing several outputs in disjoint column bands."""

    specs: list[TargetSpec]
    assignment: LatticeAssignment
    column_ranges: list[tuple[int, int]]  # [start, end) columns per output
    per_output: list[LatticeAssignment]
    method: str
    wall_time: float = 0.0

    @property
    def rows(self) -> int:
        return self.assignment.rows

    @property
    def cols(self) -> int:
        return self.assignment.cols

    @property
    def size(self) -> int:
        return self.assignment.size

    @property
    def shape(self) -> str:
        return f"{self.rows}x{self.cols}"

    def output_band(self, index: int) -> LatticeAssignment:
        """The sub-lattice (column band) realizing output ``index``."""
        start, end = self.column_ranges[index]
        entries = [
            self.assignment.entry(r, c)
            for r in range(self.rows)
            for c in range(start, end)
        ]
        return LatticeAssignment(
            self.rows,
            end - start,
            entries,
            self.assignment.num_vars,
            self.assignment.names,
        )

    def verify(self) -> bool:
        """Every output band must realize its target exactly."""
        return all(
            self.output_band(i).realizes(spec.tt)
            for i, spec in enumerate(self.specs)
        )


def _stack(parts: Sequence[LatticeAssignment]) -> tuple[LatticeAssignment, list[tuple[int, int]]]:
    merged = LatticeAssignment.hstack(
        list(parts), isolation=CONST0, pad_fill=CONST1
    )
    ranges = []
    col = 0
    for k, part in enumerate(parts):
        if k > 0:
            col += 1  # isolation column
        ranges.append((col, col + part.cols))
        col += part.cols
    return merged, ranges


def merge_straightforward(
    specs: Sequence[TargetSpec],
    options: JanusOptions = JanusOptions(),
) -> MultiFunctionResult:
    """Part 1: independent JANUS runs merged into one lattice."""
    start = time.monotonic()
    if not specs:
        raise SynthesisError("need at least one output")
    solutions = [synthesize(spec, options=options).assignment for spec in specs]
    merged, ranges = _stack(solutions)
    result = MultiFunctionResult(
        specs=list(specs),
        assignment=merged,
        column_ranges=ranges,
        per_output=solutions,
        method="straightforward",
        wall_time=time.monotonic() - start,
    )
    if options.verify and not result.verify():
        raise SynthesisError("straight-forward merge failed verification")
    return result


def synthesize_multi(
    targets: Sequence[Union[TargetSpec, Sop, TruthTable, str]],
    names: Optional[Sequence[str]] = None,
    options: JanusOptions = JanusOptions(),
) -> MultiFunctionResult:
    """JANUS-MF: straight-forward merge followed by row shrinking."""
    start = time.monotonic()
    specs = [
        make_spec(t, name=(names[i] if names else f"f{i}"))
        for i, t in enumerate(targets)
    ]
    base = merge_straightforward(specs, options)
    sub_options = options.for_subproblems()

    current = list(base.per_output)
    best = base.assignment
    best_ranges = base.column_ranges
    best_parts = list(base.per_output)
    rows = max(a.rows for a in current)
    while rows > 2:
        target_rows = rows - 1
        refit: list[LatticeAssignment] = []
        ok = True
        for spec, assignment in zip(specs, current):
            if assignment.rows <= target_rows:
                refit.append(assignment)
                continue
            max_cols = max(1, best.size // target_rows)
            fitted = fit_columns(spec, target_rows, max_cols, sub_options)
            if fitted is None:
                ok = False
                break
            refit.append(fitted)
        if not ok:
            break
        current = refit
        merged, ranges = _stack(current)
        if merged.size < best.size:
            best = merged
            best_ranges = ranges
            best_parts = list(current)
        rows = max(a.rows for a in current)

    result = MultiFunctionResult(
        specs=specs,
        assignment=best,
        column_ranges=best_ranges,
        per_output=best_parts,
        method="janus-mf",
        wall_time=time.monotonic() - start,
    )
    if options.verify and not result.verify():
        raise SynthesisError("JANUS-MF result failed verification")
    return result
