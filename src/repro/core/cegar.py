"""Lazy (CEGAR) solving of the LM problem.

The paper's encoding instantiates a constraint block for *every*
truth-table entry up front (grouped by TL pattern).  That is wasteful
when a handful of entries already pins the mapping down — which is
typical: most entries are satisfied by most mappings.

This module solves LM by counterexample-guided abstraction refinement:

1. start from the mapping variables and their exactly-one constraints
   only (every assignment of literals to switches is a candidate);
2. ask the incremental CDCL solver for a candidate mapping;
3. *verify* the decoded lattice against the target with the independent
   flood-fill evaluator; if it realizes the target, done;
4. otherwise take one violated truth-table entry, add exactly that
   entry's constraint block (the same clauses the eager encoder would
   have emitted for its TL pattern), and repeat.

Soundness is inherited from the eager encoder: the abstraction's clause
set is always a subset of the full encoding, so an UNSAT answer is a
real refutation; a SAT answer is only accepted after the checker passes.
Termination: each refinement adds a block for a *new* TL pattern, and
there are finitely many patterns (at which point the abstraction equals
the full encoding).

The refinement works on the primal side (the decoded candidate is
verified directly; no dual constant-flip involved).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SynthesisError
from repro.core.encoder import EncodeOptions, _target_literal_set
from repro.core.target import TargetSpec
from repro.lattice.assignment import CONST0, CONST1, Entry, LatticeAssignment
from repro.lattice.paths import top_bottom_paths
from repro.sat.cnf import Cnf
from repro.sat.encodings import exactly_one
from repro.sat.solver import CdclSolver, SolverConfig

__all__ = ["CegarStats", "CegarOutcome", "solve_lm_cegar", "solve_lm_lazy"]


@dataclass
class CegarStats:
    """Work counters for one CEGAR run."""

    iterations: int = 0
    one_blocks: int = 0
    zero_blocks: int = 0
    clauses: int = 0
    wall_time: float = 0.0


@dataclass
class CegarOutcome:
    """Result of :func:`solve_lm_cegar`.

    ``status`` is ``"sat"`` (``assignment`` holds a verified lattice),
    ``"unsat"`` (refuted — with the usual caveat that a solver budget
    exhaustion surfaces as ``"unknown"``), or ``"unknown"``.
    """

    status: str
    assignment: Optional[LatticeAssignment] = None
    stats: CegarStats = field(default_factory=CegarStats)


def solve_lm_cegar(
    spec: TargetSpec,
    rows: int,
    cols: int,
    options: EncodeOptions = EncodeOptions(),
    max_conflicts: Optional[int] = 200_000,
    max_iterations: Optional[int] = None,
    max_time: Optional[float] = None,
    config: Optional[SolverConfig] = None,
) -> CegarOutcome:
    """Decide the LM instance lazily; see the module docstring.

    ``max_conflicts`` budgets each incremental solver call and ``max_time``
    caps the whole refinement loop (checked between iterations and passed
    through to the solver) — the per-worker budgets the parallel engine
    relies on to keep portfolio losers from running away.  ``config``
    tunes the underlying CDCL solver; the explicit budgets here still
    override any the config carries.
    """
    start = time.monotonic()
    stats = CegarStats()

    tl = _target_literal_set(spec.isop)
    lit_entries = [e for e in tl if not e.is_const]
    const0_idx = tl.index(CONST0)
    const1_idx = tl.index(CONST1)
    num_cells = rows * cols
    if len(top_bottom_paths(rows, cols)) > options.max_products:
        stats.wall_time = time.monotonic() - start
        return CegarOutcome("unknown", stats=stats)
    products = top_bottom_paths(rows, cols)
    product_cells = [
        [i for i in range(num_cells) if mask >> i & 1] for mask in products
    ]
    levels = [[r * cols + c for c in range(cols)] for r in range(rows)]
    cross = [
        [(r * cols + c, (r + 1) * cols + c) for c in range(cols)]
        for r in range(rows - 1)
    ]

    cnf = Cnf()
    mapping: dict[tuple[int, int], int] = {}
    for cell in range(num_cells):
        for j in range(len(tl)):
            mapping[(cell, j)] = cnf.pool.var(("m", cell, j))
    for cell in range(num_cells):
        exactly_one(
            cnf,
            [mapping[(cell, j)] for j in range(len(tl))],
            method=options.eo_method,
        )

    solver = CdclSolver(
        max_conflicts=max_conflicts, max_time=max_time, config=config
    )
    fed = 0

    def feed() -> bool:
        """Push clauses added to ``cnf`` since the last call; False on
        trivial UNSAT."""
        nonlocal fed
        ok = True
        while fed < len(cnf.clauses):
            ok = solver.add_clause(cnf.clauses[fed]) and ok
            fed += 1
        return ok

    def add_zero_block(pattern: tuple[bool, ...]) -> None:
        false_idx = [j for j, val in enumerate(pattern) if not val]
        false_idx.append(const0_idx)
        for cells in product_cells:
            cnf.add([mapping[(i, j)] for i in cells for j in false_idx])
        stats.zero_blocks += 1

    def add_one_block(pattern: tuple[bool, ...], pid: int) -> None:
        true_idx = [j for j, val in enumerate(pattern) if val]
        true_idx.append(const1_idx)
        v_vars = []
        for cell in range(num_cells):
            v = cnf.pool.var(("v", pid, cell))
            v_vars.append(v)
            cnf.add([-v] + [mapping[(cell, j)] for j in true_idx])
        selectors = []
        for p_idx, cells in enumerate(product_cells):
            s = cnf.pool.var(("s", pid, p_idx))
            selectors.append(s)
            for i in cells:
                cnf.add([-s, v_vars[i]])
        cnf.add(selectors)
        if options.row_facts:
            for level_cells in levels:
                cnf.add([v_vars[i] for i in level_cells])
            for b_idx, pairs in enumerate(cross):
                b_vars = []
                for k, (a, b) in enumerate(pairs):
                    bv = cnf.pool.var(("b", pid, b_idx, k))
                    b_vars.append(bv)
                    cnf.add([-bv, v_vars[a]])
                    cnf.add([-bv, v_vars[b]])
                cnf.add(b_vars)
        stats.one_blocks += 1

    def decode(model: list[bool]) -> LatticeAssignment:
        entries: list[Entry] = []
        for cell in range(num_cells):
            chosen: Optional[Entry] = None
            for j, tl_entry in enumerate(tl):
                if model[mapping[(cell, j)] - 1]:
                    chosen = tl_entry
                    break
            if chosen is None:  # pragma: no cover - exactly-one forbids it
                raise SynthesisError(f"cell {cell} unmapped")
            entries.append(chosen)
        return LatticeAssignment(
            rows, cols, entries, spec.num_inputs, spec.name_list()
        )

    constrained: set[tuple[bool, ...]] = set()
    limit = max_iterations if max_iterations is not None else 1 << 62

    while stats.iterations < limit:
        if max_time is not None and time.monotonic() - start > max_time:
            break
        stats.iterations += 1
        if not feed():
            stats.clauses = len(cnf.clauses)
            stats.wall_time = time.monotonic() - start
            return CegarOutcome("unsat", stats=stats)
        result = solver.solve()
        if result.status == "unknown":
            break
        if result.is_unsat:
            stats.clauses = len(cnf.clauses)
            stats.wall_time = time.monotonic() - start
            return CegarOutcome("unsat", stats=stats)

        candidate = decode(result.model)
        realized = candidate.realized_truthtable()
        # Violations against the target interval [tt, upper].
        missing = spec.tt - realized  # required 1, realized 0
        excess = realized - spec.upper  # required 0, realized 1
        if missing.is_zero() and excess.is_zero():
            stats.clauses = len(cnf.clauses)
            stats.wall_time = time.monotonic() - start
            return CegarOutcome("sat", assignment=candidate, stats=stats)

        refined = False
        for table, is_one in ((missing, True), (excess, False)):
            for entry in table.onset():
                pattern = tuple(e.evaluate(entry) for e in lit_entries)
                key = (is_one,) + pattern
                if key in constrained:
                    continue
                constrained.add(key)
                if is_one:
                    add_one_block(pattern, pid=stats.one_blocks)
                else:
                    add_zero_block(pattern)
                refined = True
                break  # one new block per counterexample table
            if refined:
                break
        if not refined:  # pragma: no cover - defensive
            raise SynthesisError(
                "candidate violates the target but every violated pattern "
                "is already constrained"
            )

    stats.clauses = len(cnf.clauses)
    stats.wall_time = time.monotonic() - start
    return CegarOutcome("unknown", stats=stats)


def solve_lm_lazy(spec: TargetSpec, rows: int, cols: int, options=None):
    """CEGAR-backed drop-in for :func:`repro.core.janus.solve_lm`.

    Accepts the same :class:`~repro.core.janus.JanusOptions` and returns
    the same :class:`~repro.core.janus.LmOutcome`, which is what lets the
    parallel engine race the eager and lazy backends as a portfolio on a
    single LM instance.
    """
    from dataclasses import replace

    from repro.core.janus import JanusOptions, LmAttempt, LmOutcome
    from repro.core.structural import structural_check

    if options is None:
        options = JanusOptions()
    start = time.monotonic()
    attempt = LmAttempt(rows=rows, cols=cols, status="structural", side="cegar")
    if not structural_check(spec, rows, cols):
        attempt.wall_time = time.monotonic() - start
        return LmOutcome("unsat", None, attempt)
    enc_options = replace(
        options.encode, max_products=options.max_lattice_products
    )
    outcome = solve_lm_cegar(
        spec,
        rows,
        cols,
        enc_options,
        max_conflicts=options.max_conflicts,
        max_time=options.lm_time_limit,
        config=options.solver,
    )
    attempt.status = outcome.status
    attempt.wall_time = time.monotonic() - start
    assignment = outcome.assignment
    if assignment is not None and options.trim_solutions:
        assignment = assignment.trimmed()
    return LmOutcome(outcome.status, assignment, attempt)
