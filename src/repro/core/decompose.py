"""Divide-and-synthesize (DS) upper bound (paper, Section III-B).

The DS method splits the target's cover into two sub-functions ``g`` and
``h`` with ``f = g + h`` (balanced product counts, few literals), runs
JANUS on each, stitches the two solutions side by side behind a single
constant-0 isolation column (padding shorter blocks with constant-1 bottom
rows), and then tries to trade rows for columns: as long as the combined
lattice has more than three rows, each sub-function is re-synthesized on a
one-row-shorter lattice of minimal width, keeping the combination whenever
it shrinks.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SynthesisError
from repro.boolf.sop import Sop
from repro.core.bounds import BoundResult
from repro.core.target import TargetSpec
from repro.lattice.assignment import CONST0, CONST1, LatticeAssignment

__all__ = ["partition_products", "ub_ds", "shrink_rows"]


def partition_products(cover: Sop) -> tuple[Sop, Sop]:
    """Split a cover into two balanced halves.

    Products are dealt in descending literal count to the half with fewer
    literals so far — balancing both the product counts (within one) and
    the literal totals, which is what the paper asks of ``g`` and ``h``.
    """
    if cover.num_products < 2:
        raise SynthesisError("cannot partition a cover with fewer than 2 products")
    order = sorted(cover.cubes, key=lambda c: -c.num_literals)
    parts: list[list] = [[], []]
    lits = [0, 0]
    for cube in order:
        # Prefer the half with fewer products; tie-break on literal load.
        k = min((0, 1), key=lambda i: (len(parts[i]), lits[i]))
        parts[k].append(cube)
        lits[k] += cube.num_literals
    g = Sop(sorted(parts[0]), cover.num_vars, cover.names)
    h = Sop(sorted(parts[1]), cover.num_vars, cover.names)
    return g, h


def _combine(
    left: LatticeAssignment, right: LatticeAssignment
) -> LatticeAssignment:
    """Side-by-side OR-composition behind one constant-0 isolation column."""
    return LatticeAssignment.hstack([left, right], isolation=CONST0, pad_fill=CONST1)


def ub_ds(spec: TargetSpec, options=None, prober=None) -> BoundResult:
    """The DS upper bound: partition, synthesize, combine, shrink.

    ``prober`` (see :class:`repro.core.janus.SerialProber`) is threaded
    into the recursive JANUS calls so a parallel/cached engine covers the
    sub-syntheses too.
    """
    from repro.core.janus import JanusOptions, make_spec, synthesize

    if options is None:
        options = JanusOptions()
    if spec.num_products < 2:
        raise SynthesisError("DS needs at least two products")
    sub_options = options.for_subproblems()

    g, h = partition_products(spec.isop)
    g_spec = make_spec(g, name=f"{spec.name}.g")
    h_spec = make_spec(h, name=f"{spec.name}.h")
    g_res = synthesize(g_spec, options=sub_options, prober=prober)
    h_res = synthesize(h_spec, options=sub_options, prober=prober)

    combined = _combine(g_res.assignment, h_res.assignment)
    if not combined.realizes(spec.tt):
        raise SynthesisError("DS combination failed verification")

    best = shrink_rows(
        spec,
        [g_spec, h_spec],
        [g_res.assignment, h_res.assignment],
        sub_options,
        prober=prober,
    )
    if best is not None and best.size < combined.size:
        combined = best
    return BoundResult("ds", combined)


def shrink_rows(
    spec: TargetSpec,
    sub_specs: list[TargetSpec],
    sub_assignments: list[LatticeAssignment],
    options,
    prober=None,
) -> Optional[LatticeAssignment]:
    """Step 3 of DS: explore combinations with fewer rows.

    While the tallest block has more than three rows, re-fit every
    sub-function onto ``rows - 1`` rows with minimal width (bounded so the
    total never exceeds the best size found) and keep improvements.
    """
    from repro.core.janus import fit_columns

    current = list(sub_assignments)
    best: Optional[LatticeAssignment] = None
    best_cost = sum(a.size for a in current) + max(a.rows for a in current)

    rows = max(a.rows for a in current)
    while rows > 3:
        target_rows = rows - 1
        refit: list[LatticeAssignment] = []
        ok = True
        for sub_spec, assignment in zip(sub_specs, current):
            if assignment.rows <= target_rows:
                refit.append(assignment)
                continue
            # Width budget: the refitted block may not push the combined
            # lattice past the best known cost.
            others = sum(a.cols for a in current if a is not assignment)
            max_cols = max(1, best_cost // target_rows - others - len(current) + 1)
            fitted = fit_columns(
                sub_spec, target_rows, max_cols, options, prober=prober
            )
            if fitted is None:
                ok = False
                break
            refit.append(fitted)
        if not ok:
            break
        current = refit
        combined = _combine_many(current)
        if combined.realizes(spec.tt) and (
            best is None or combined.size < best.size
        ):
            best = combined
            best_cost = combined.size
        rows = max(a.rows for a in current)
    return best


def _combine_many(parts: list[LatticeAssignment]) -> LatticeAssignment:
    return LatticeAssignment.hstack(parts, isolation=CONST0, pad_fill=CONST1)
