"""D-reducible-function decomposition (the method of [8]).

A function ``f`` over n variables is *D-reducible* when its onset is
contained in an affine subspace ``A`` strictly smaller than the whole
cube.  Writing ``A = p ^ span(B)`` for a base point ``p`` and a basis
``B`` of dimension d < n, the function factors as

    f(x) = chi_A(x) AND f_A(pi(x))

where ``chi_A`` is the characteristic function of ``A`` and ``f_A`` is
the *projection* of ``f`` onto d coordinates of ``A``.  Bernasconi,
Ciriani, Frontini and Trucco synthesize the small projection exactly and
attach the characteristic-function logic; the JANUS paper cites this as
the VLSI-SoC 2016 baseline and notes that "not every logic function can
be represented in the D-reducible form".

This module reproduces that flow honestly for the simulator setting:

* :func:`affine_hull` — smallest affine space containing the onset,
* :func:`reduce_dreducible` — base point, basis, the d projection
  coordinates, the affine constraints and the projection function,
* :func:`synthesize_dreducible` — JANUS on the projection; the affine
  constraints split into *cube constraints* (a variable fixed to a
  constant — realizable on the lattice rows directly, as [8] does) and
  general *EXOR constraints* (external parity gates, reported like the
  p-circuit/autosymmetry baselines do).  Composition is verified on
  every input vector.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import SynthesisError
from repro.boolf.gf2 import dot, row_reduce
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable
from repro.core.janus import JanusOptions, SynthesisResult, make_spec, synthesize
from repro.core.target import TargetSpec

__all__ = [
    "AffineSpace",
    "DReducibleReduction",
    "DReducibleResult",
    "affine_hull",
    "is_dreducible",
    "reduce_dreducible",
    "synthesize_dreducible",
]


@dataclass
class AffineSpace:
    """``point ^ span(basis)`` inside GF(2)^num_vars."""

    point: int
    basis: list[int]
    num_vars: int

    @property
    def dimension(self) -> int:
        return len(self.basis)

    def contains(self, vector: int) -> bool:
        shifted = vector ^ self.point
        for b in self.basis:
            shifted = min(shifted, shifted ^ b)
        return shifted == 0

    def characteristic(self) -> TruthTable:
        """Truth table of ``chi_A``."""
        values = np.fromiter(
            (self.contains(m) for m in range(1 << self.num_vars)),
            dtype=bool,
            count=1 << self.num_vars,
        )
        return TruthTable(values, self.num_vars)

    def constraints(self) -> list[tuple[int, int]]:
        """Affine constraints ``(mask, bit)``: x in A iff
        ``dot(mask, x) == bit`` for every pair.

        There are ``num_vars - dimension`` of them (a basis of the
        orthogonal complement, each with its right-hand side).
        """
        from repro.boolf.gf2 import orthogonal_complement

        masks = orthogonal_complement(self.basis, self.num_vars)
        return [(mask, dot(mask, self.point)) for mask in masks]


def affine_hull(tt: TruthTable) -> AffineSpace:
    """Smallest affine space containing the onset of ``tt``.

    Raises :class:`~repro.errors.SynthesisError` for the constant-0
    function, whose onset is empty.
    """
    onset = tt.onset()
    if not onset:
        raise SynthesisError("the zero function has no affine hull")
    point = onset[0]
    basis = row_reduce(m ^ point for m in onset[1:])
    return AffineSpace(point, basis, tt.num_vars)


def is_dreducible(tt: TruthTable) -> bool:
    """True iff the affine hull is a proper subspace of the cube."""
    if tt.is_zero():
        return False
    return affine_hull(tt).dimension < tt.num_vars


@dataclass
class DReducibleReduction:
    """Outcome of :func:`reduce_dreducible`."""

    hull: AffineSpace
    projection: TruthTable  # f_A over hull.dimension variables
    # Constraints fixing single variables: (var, value) — lattice-friendly.
    cube_constraints: list[tuple[int, int]]
    # General parity constraints: (mask, bit) with mask of weight >= 2.
    exor_constraints: list[tuple[int, int]]

    def embed(self, y: int) -> int:
        """Map a projection input vector back into the affine space."""
        x = self.hull.point
        for i, b in enumerate(self.hull.basis):
            if y >> i & 1:
                x ^= b
        return x

    def project(self, x: int) -> int:
        """Coordinates of ``x`` in the hull basis (meaningful when
        ``hull.contains(x)``)."""
        shifted = x ^ self.hull.point
        y = 0
        for i, b in enumerate(self.hull.basis):
            lead = 1 << (b.bit_length() - 1)
            if shifted & lead:
                shifted ^= b
                y |= 1 << i
        return y

    def compose(self, x: int) -> bool:
        """``chi_A(x) AND f_A(pi(x))`` — must equal ``f(x)``."""
        if not self.hull.contains(x):
            return False
        return self.projection.evaluate(self.project(x))


def reduce_dreducible(tt: TruthTable) -> DReducibleReduction:
    """Compute the D-reducible decomposition of ``tt``."""
    hull = affine_hull(tt)
    d = hull.dimension
    values = np.zeros(1 << d, dtype=bool)
    reduction = DReducibleReduction(hull, tt, [], [])
    for y in range(1 << d):
        values[y] = tt.evaluate(reduction.embed(y))
    reduction.projection = TruthTable(values, d)
    for mask, bit in hull.constraints():
        if mask.bit_count() == 1:
            reduction.cube_constraints.append((mask.bit_length() - 1, bit))
        else:
            reduction.exor_constraints.append((mask, bit))
    return reduction


@dataclass
class DReducibleResult:
    """Lattice for the projection plus the characteristic-function logic."""

    reduction: DReducibleReduction
    synthesis: SynthesisResult
    wall_time: float = 0.0

    @property
    def lattice_size(self) -> int:
        return self.synthesis.size

    @property
    def num_exor_gates(self) -> int:
        return len(self.reduction.exor_constraints)

    def evaluate(self, minterm: int) -> bool:
        if not self.reduction.hull.contains(minterm):
            return False
        return self.synthesis.assignment.evaluate(
            self.reduction.project(minterm)
        )

    def realized_truthtable(self) -> TruthTable:
        n = self.reduction.hull.num_vars
        values = np.zeros(1 << n, dtype=bool)
        for m in range(1 << n):
            values[m] = self.evaluate(m)
        return TruthTable(values, n)


def synthesize_dreducible(
    target: Union[TargetSpec, Sop, TruthTable, str],
    options: JanusOptions = JanusOptions(),
    name: str = "f",
) -> DReducibleResult:
    """The [8]-style flow: project onto the affine hull, synthesize the
    projection with JANUS, verify the composition.

    Works for any non-zero function; the decomposition only *wins* when
    the function is properly D-reducible (hull dimension < n).
    """
    import time

    start = time.monotonic()
    spec = make_spec(target, name=name)
    reduction = reduce_dreducible(spec.tt)
    projection_spec = TargetSpec.from_truthtable(
        reduction.projection,
        name=f"{name}_A",
        exact=options.exact_minimization,
    )
    synthesis = synthesize(projection_spec, options)
    result = DReducibleResult(reduction, synthesis)
    result.wall_time = time.monotonic() - start
    if options.verify and result.realized_truthtable() != spec.tt:
        raise SynthesisError(
            "D-reducible composition does not reproduce the target"
        )
    return result
