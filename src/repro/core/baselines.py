"""Baseline LS algorithms the paper compares against (Table II).

* :func:`exact_search` — the exact method of Gange et al. [6] as updated
  by [11]: binary search between the Altun–Riedel-style bounds using only
  the *old* upper-bound constructions (DP/PS/DPS) and the plain encoding
  without JANUS's approximate degree restrictions.  (The original encodes
  LM as QBF flattened into SAT; our SAT formulation decides the same
  relation.)  Exact up to budget: a solver timeout is treated as
  unrealizable, as in the paper's 6-hour runs.
* :func:`approx_restricted` — the approximate method of [6]: the same
  search, but every conducting path at a 1-entry must additionally be
  mapped inside the literal set of a single target product (the "strict
  rules on the realization of a product" the paper blames for its worst
  solutions).
* :func:`heuristic_candidates` — the heuristic of Morgul & Altun [11]:
  only a handful of *promising* shapes derived from the target's degree
  and its dual's degree are probed, smallest area first, without a
  dichotomic search.
* :func:`decompose_pcircuit` — a decomposition baseline standing in for
  the p-circuit method of Bernasconi et al. [9]: Shannon-style cofactor
  decomposition on the best splitting variable, sub-functions synthesized
  independently and stacked behind an isolation column.

All baselines return :class:`~repro.core.janus.SynthesisResult` objects
with ``method`` set accordingly, and verify their assignments.
"""

from __future__ import annotations

import time
from dataclasses import replace
from typing import Optional, Union

from repro.errors import SynthesisError
from repro.boolf.cube import Cube
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable
from repro.core.bounds import best_upper_bound
from repro.core.janus import (
    JanusOptions,
    LmAttempt,
    SynthesisResult,
    _trivial_result,
    candidate_shapes,
    make_spec,
    solve_lm,
    synthesize,
)
from repro.core.structural import structural_lower_bound
from repro.core.target import TargetSpec
from repro.lattice.assignment import CONST0, CONST1, LatticeAssignment

__all__ = [
    "exact_search",
    "approx_restricted",
    "heuristic_candidates",
    "decompose_pcircuit",
]

Target = Union[TargetSpec, Sop, TruthTable, str]


def _search_between(
    spec: TargetSpec,
    lb: int,
    best_assignment: LatticeAssignment,
    options: JanusOptions,
    attempts: list[LmAttempt],
) -> tuple[LatticeAssignment, int]:
    """Shared dichotomic loop used by the exact/approximate baselines."""
    ub = best_assignment.size
    while lb < ub:
        mp = (lb + ub) // 2
        found: Optional[LatticeAssignment] = None
        for rows, cols in candidate_shapes(mp, lb):
            outcome = solve_lm(spec, rows, cols, options)
            attempts.append(outcome.attempt)
            if outcome.status == "sat":
                found = outcome.assignment
                break
        if found is not None:
            best_assignment = found
            ub = found.size
        else:
            lb = mp + 1
    return best_assignment, lb


def exact_search(
    target: Target, name: str = "f", options: JanusOptions = JanusOptions()
) -> SynthesisResult:
    """Exact method of [6]/[11]: old bounds, plain (unrestricted) encoding."""
    start = time.monotonic()
    spec = make_spec(target, name=name, exact=options.exact_minimization)
    trivial = _trivial_result(spec)
    if trivial is not None:
        trivial.method = "exact[6]"
        return trivial
    # Plain encoding: no degree/product-realization restrictions, so the
    # only approximation left is the solver budget.
    options = replace(
        options,
        encode=replace(options.encode, degree_constraints=False),
        ub_methods=("dp", "ps", "dps"),
    )
    lb = structural_lower_bound(spec)
    initial_lb = lb
    best_bound, all_bounds = best_upper_bound(spec, ("dp", "ps", "dps"))
    attempts: list[LmAttempt] = []
    assignment, lb = _search_between(
        spec, lb, best_bound.assignment, options, attempts
    )
    return SynthesisResult(
        spec=spec,
        assignment=assignment,
        lower_bound=lb,
        initial_upper_bound=best_bound.size,
        upper_bounds={k: (v.rows, v.cols) for k, v in all_bounds.items()},
        attempts=attempts,
        wall_time=time.monotonic() - start,
        method="exact[6]",
        initial_lower_bound=initial_lb,
    )


def approx_restricted(
    target: Target, name: str = "f", options: JanusOptions = JanusOptions()
) -> SynthesisResult:
    """Approximate method of [6]: paths restricted to single products.

    Realized via the encoder's product-realization machinery applied to
    *every* product (not only maximum-degree ones), which forbids paths
    from mixing literals of different products — the strict rule the paper
    describes.
    """
    start = time.monotonic()
    spec = make_spec(target, name=name, exact=options.exact_minimization)
    trivial = _trivial_result(spec)
    if trivial is not None:
        trivial.method = "approx[6]"
        return trivial
    options = replace(
        options,
        encode=replace(
            options.encode, degree_constraints=True, big_product_threshold=0
        ),
        ub_methods=("dp", "ps", "dps"),
    )
    lb = structural_lower_bound(spec)
    initial_lb = lb
    best_bound, all_bounds = best_upper_bound(spec, ("dp", "ps", "dps"))
    attempts: list[LmAttempt] = []
    assignment, lb = _search_between(
        spec, lb, best_bound.assignment, options, attempts
    )
    return SynthesisResult(
        spec=spec,
        assignment=assignment,
        lower_bound=lb,
        initial_upper_bound=best_bound.size,
        upper_bounds={k: (v.rows, v.cols) for k, v in all_bounds.items()},
        attempts=attempts,
        wall_time=time.monotonic() - start,
        method="approx[6]",
        initial_lower_bound=initial_lb,
    )


def heuristic_candidates(
    target: Target, name: str = "f", options: JanusOptions = JanusOptions()
) -> SynthesisResult:
    """Heuristic of [11]: probe only promising shapes, no dichotomy.

    Promising shapes: ``degree x k`` and ``k x dual_degree`` ladders plus
    near-square factorizations between the bounds, in increasing area; the
    first SAT answer is returned.  Because not every candidate is
    considered, results can be far from optimal (cf. 5xp1_3 in Table II).
    """
    start = time.monotonic()
    spec = make_spec(target, name=name, exact=options.exact_minimization)
    trivial = _trivial_result(spec)
    if trivial is not None:
        trivial.method = "heuristic[11]"
        return trivial
    options = replace(options, ub_methods=("dp", "ps", "dps"))
    lb = structural_lower_bound(spec)
    best_bound, all_bounds = best_upper_bound(spec, ("dp", "ps", "dps"))
    ub = best_bound.size

    shapes: set[tuple[int, int]] = set()
    delta, gamma = spec.degree, spec.dual_degree
    for k in range(1, max(2, ub // max(1, delta)) + 1):
        shapes.add((delta, k))
    for k in range(1, max(2, ub // max(1, gamma)) + 1):
        shapes.add((k, gamma))
    for area in range(lb, ub):
        root = int(area**0.5)
        for m in (root, root + 1):
            if m >= 1 and area % m == 0:
                shapes.add((m, area // m))
                shapes.add((area // m, m))
    ordered = sorted(
        (s for s in shapes if lb <= s[0] * s[1] < ub),
        key=lambda s: (s[0] * s[1], abs(s[0] - s[1])),
    )

    attempts: list[LmAttempt] = []
    assignment = best_bound.assignment
    for rows, cols in ordered:
        outcome = solve_lm(spec, rows, cols, options)
        attempts.append(outcome.attempt)
        if outcome.status == "sat":
            assignment = outcome.assignment
            break
    return SynthesisResult(
        spec=spec,
        assignment=assignment,
        lower_bound=lb,
        initial_upper_bound=ub,
        upper_bounds={k: (v.rows, v.cols) for k, v in all_bounds.items()},
        attempts=attempts,
        wall_time=time.monotonic() - start,
        method="heuristic[11]",
        initial_lower_bound=lb,
    )


def decompose_pcircuit(
    target: Target, name: str = "f", options: JanusOptions = JanusOptions()
) -> SynthesisResult:
    """Decomposition baseline standing in for the p-circuit method [9].

    Splits on the variable whose cofactors have the fewest total products,
    synthesizes ``x*f_x`` and ``x'*f_x'`` independently, and stacks them
    behind an isolation column.
    """
    start = time.monotonic()
    spec = make_spec(target, name=name, exact=options.exact_minimization)
    trivial = _trivial_result(spec)
    if trivial is not None:
        trivial.method = "pcircuit[9]"
        return trivial
    sub_options = options.for_subproblems()

    best_var = None
    best_cost = None
    for var in spec.tt.support():
        c0 = make_spec(spec.tt.restrict(var, False), name="c0")
        c1 = make_spec(spec.tt.restrict(var, True), name="c1")
        cost = c0.num_products + c1.num_products
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_var = var
    if best_var is None:
        raise SynthesisError("target has empty support")

    parts: list[LatticeAssignment] = []
    for value in (False, True):
        lit = Cube.from_literals([(best_var, value)], spec.num_inputs)
        cof = spec.tt.restrict(best_var, value)
        branch_tt = cof & TruthTable.from_cube(lit)
        if branch_tt.is_zero():
            continue
        branch = make_spec(branch_tt, name=f"{spec.name}|{best_var}={int(value)}")
        parts.append(synthesize(branch, options=sub_options).assignment)
    if not parts:
        raise SynthesisError("decomposition produced no branches")
    assignment = (
        parts[0]
        if len(parts) == 1
        else LatticeAssignment.hstack(parts, isolation=CONST0, pad_fill=CONST1)
    )
    if not assignment.realizes(spec.tt):
        raise SynthesisError("p-circuit composition failed verification")
    lb = structural_lower_bound(spec)
    return SynthesisResult(
        spec=spec,
        assignment=assignment,
        lower_bound=lb,
        initial_upper_bound=assignment.size,
        upper_bounds={},
        attempts=[],
        wall_time=time.monotonic() - start,
        method="pcircuit[9]",
        initial_lower_bound=lb,
    )
