"""Structural feasibility checks (paper, Section III-A / III-B).

Before encoding an LM problem, JANUS performs a cheap necessary-condition
check: every product of the target function needs a *distinct* product of
the lattice function with at least as many literals (a path can realize a
k-literal product only if it has >= k switches, and different target
products need different paths), and the same must hold between the duals.
The lower bound of the LS problem is the smallest lattice area for which
some shape passes this check.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.target import TargetSpec
from repro.lattice.paths import left_right_paths8, top_bottom_paths

__all__ = [
    "sizes_coverable",
    "structural_check",
    "structural_lower_bound",
    "shapes_of_area",
]


def sizes_coverable(
    target_sizes: Sequence[int], lattice_sizes: Sequence[int]
) -> bool:
    """Can each target product be matched to a distinct lattice product of
    at least its size?  Greedy matching on descending sizes is exact here
    because compatibility is a threshold relation."""
    if len(target_sizes) > len(lattice_sizes):
        return False
    t = sorted(target_sizes, reverse=True)
    l = sorted(lattice_sizes, reverse=True)
    return all(ls >= ts for ts, ls in zip(t, l))


def structural_check(spec: TargetSpec, rows: int, cols: int) -> bool:
    """Necessary condition for realizability of ``spec`` on rows x cols."""
    primal = top_bottom_paths(rows, cols)
    if not sizes_coverable(
        [c.num_literals for c in spec.isop.cubes],
        [mask.bit_count() for mask in primal],
    ):
        return False
    dual = left_right_paths8(rows, cols)
    return sizes_coverable(
        [c.num_literals for c in spec.dual_isop.cubes],
        [mask.bit_count() for mask in dual],
    )


def shapes_of_area(area: int) -> list[tuple[int, int]]:
    """All exact factorizations ``rows * cols == area`` (both orientations)."""
    out = []
    for m in range(1, area + 1):
        if area % m == 0:
            out.append((m, area // m))
    return out


def structural_lower_bound(spec: TargetSpec, max_area: int = 4096) -> int:
    """Smallest area whose shapes include one passing the structural check.

    Mirrors the paper's Section III-B sweep: starting from area 1, try every
    shape of that area; the first area with a passing shape is the lower
    bound of the LS problem.
    """
    if spec.is_constant:
        return 1
    area = max(1, spec.degree)  # a degree-d product needs d switches
    while area <= max_area:
        for rows, cols in shapes_of_area(area):
            if structural_check(spec, rows, cols):
                return area
        area += 1
    return max_area
