"""SAT encoding of the lattice mapping (LM) problem (paper, Section III-A).

Given a target function and an ``m x n`` lattice, decide whether assigning
target literals / constants to the switches realizes the target.  The
encoding follows the paper:

* **Mapping variables** ``M[cell][k]`` say switch ``cell`` is assigned the
  k-th element of the target-literal set *TL* (the literals of the
  minimized cover plus constants 0 and 1); an exactly-one constraint holds
  per cell (pairwise, as in the paper).
* For every truth-table entry where the target is **0**, every lattice
  product (path) must be cut: some switch on the path is assigned an
  element of TL that evaluates to 0 at this entry.  The paper reaches this
  clause set by constant-propagating the circuit POS formula; here the
  per-entry circuit inputs are substituted straight through the mapping
  variables, which yields exactly those reduced clauses without auxiliary
  circuit variables.
* For every entry where the target is **1**, a selector per path asserts
  that all its switches conduct (via per-entry conduction variables
  ``V[cell]``), at least one selector is on, and the paper's two
  path facts are added: every level (row) contains a conducting switch,
  and every pair of consecutive levels is vertically linked somewhere.
* **Degree constraints**: when the target degree equals the lattice
  function degree, each maximum-degree product must be realized by a
  maximum-degree path mapped entirely into that product's literals;
  products with more than five literals must be realized by paths with
  more than five switches (the paper's empirical rule).

Two encodings exist per LM instance: the *primal* one (target on the
4-connected top-bottom products) and the *dual* one (dual target on the
8-connected left-right products).  Both realize the same physical
assignment — the duality theorem converts one view into the other — and
JANUS solves whichever has the smaller ``variables x clauses`` complexity,
as the paper prescribes.

Entries of the truth table are grouped by the value pattern they induce on
TL: entries with identical patterns yield identical constraint blocks, so
each distinct pattern is encoded once.  Zero-patterns whose false-literal
set contains another zero-pattern's set are subsumed and skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import EncodingError, SynthesisError
from repro.boolf.sop import Sop
from repro.core.target import TargetSpec
from repro.lattice.assignment import CONST0, CONST1, Entry, LatticeAssignment
from repro.lattice.paths import left_right_paths8, top_bottom_paths
from repro.sat.cnf import Cnf
from repro.sat.encodings import exactly_one
from repro.sat.solver import SolveResult

__all__ = [
    "EncodeOptions",
    "LmEncoding",
    "ShapeFamily",
    "encode_lm",
    "best_encoding",
    "shape_family",
]


@dataclass(frozen=True)
class EncodeOptions:
    """Tuning knobs for the LM encoding (defaults follow the paper)."""

    row_facts: bool = True
    degree_constraints: bool = True
    big_product_threshold: int = 5
    eo_method: str = "pairwise"
    # Mirror symmetry breaking prunes UNSAT proofs but removes easy models
    # from SAT probes; measured net-negative on the dichotomic search (see
    # bench_ablation), so off by default.
    symmetry_breaking: bool = False
    max_products: int = 50_000  # refuse to encode pathologically rich lattices
    max_clauses: int = 2_000_000


@dataclass
class LmEncoding:
    """A built LM SAT instance for one side (primal or dual)."""

    side: str  # "primal" | "dual"
    rows: int
    cols: int
    spec: TargetSpec
    tl: list[Entry]
    cnf: Optional[Cnf] = None
    infeasible: bool = False  # proven unrealizable during encoding
    too_big: bool = False  # encoding limits hit; undecided
    mapping_vars: dict[tuple[int, int], int] = field(default_factory=dict)
    # Number of degree-based product-realization clauses in the CNF.
    # Sub-shape probing on a live solver (see :class:`ShapeFamily`) is
    # only sound when this is zero: those clauses quantify over the
    # *envelope* lattice's maximum-degree paths, a property that does not
    # restrict to sub-lattices.
    degree_clauses: int = 0
    # Symmetry-breaking clauses likewise pin the envelope's own mirror
    # orbits and do not commute with row/column padding.
    symmetry_clauses: int = 0

    @property
    def complexity(self) -> int:
        """The paper's measure: variables times clauses."""
        if self.cnf is None:
            return 0
        return self.cnf.complexity

    def decode(self, result: SolveResult) -> LatticeAssignment:
        """Extract the lattice assignment from a SAT model.

        For the dual side the decoded grid is the same physical lattice,
        with one twist: the duality theorem relates the top-bottom and
        left-right functions *of the switch variables*, and a literal
        substitution commutes with input complementation while a constant
        does not.  Concretely, if the 8-connected left-right function of
        assignment A equals f^D, then the 4-connected top-bottom function
        of A *with its constants complemented* equals f.  So dual-side
        decoding flips every constant cell.
        """
        if not result.is_sat or result.model is None:
            raise SynthesisError("cannot decode a non-SAT result")
        entries: list[Entry] = []
        for cell in range(self.rows * self.cols):
            chosen: Optional[Entry] = None
            for j, tl_entry in enumerate(self.tl):
                var = self.mapping_vars.get((cell, j))
                if var is not None and result.model[var - 1]:
                    if chosen is not None:
                        raise SynthesisError(
                            f"cell {cell} mapped twice (exactly-one violated)"
                        )
                    chosen = tl_entry
            if chosen is None:
                raise SynthesisError(f"cell {cell} has no mapping in the model")
            if self.side == "dual" and chosen.is_const:
                chosen = CONST0 if chosen.positive else CONST1
            entries.append(chosen)
        return LatticeAssignment(
            self.rows,
            self.cols,
            entries,
            self.spec.num_inputs,
            self.spec.name_list(),
        )


def _target_literal_set(cover: Sop) -> list[Entry]:
    """TL: the cover's literals plus the constants 0 and 1."""
    literals = sorted(cover.literal_set())
    return [Entry.lit(v, pos) for v, pos in literals] + [CONST0, CONST1]


def _dual_cross_pairs(rows: int, cols: int, col: int) -> list[tuple[int, int]]:
    """8-connected links from column ``col`` to ``col + 1``."""
    pairs = []
    for r in range(rows):
        for rr in (r - 1, r, r + 1):
            if 0 <= rr < rows:
                pairs.append((r * cols + col, rr * cols + col + 1))
    return pairs


def encode_lm(
    spec: TargetSpec,
    rows: int,
    cols: int,
    side: str = "primal",
    options: EncodeOptions = EncodeOptions(),
) -> LmEncoding:
    """Build the LM SAT instance for one side of the duality."""
    if side == "primal":
        # The realized function g must satisfy tt <= g <= upper.
        required1 = spec.tt.values
        required0 = ~spec.upper.values
        cover = spec.isop
        products = top_bottom_paths(rows, cols)
        levels = [[r * cols + c for c in range(cols)] for r in range(rows)]
        cross = [
            [(r * cols + c, (r + 1) * cols + c) for c in range(cols)]
            for r in range(rows - 1)
        ]
    elif side == "dual":
        # The left-right function is g^D: forced 1 where every admissible g
        # is 0 at the complemented input, forced 0 where every g is 1.
        required1 = spec.upper.dual().values
        required0 = spec.tt.compose_complement_inputs().values
        cover = spec.dual_isop
        products = left_right_paths8(rows, cols)
        levels = [[r * cols + c for r in range(rows)] for c in range(cols)]
        cross = [_dual_cross_pairs(rows, cols, c) for c in range(cols - 1)]
    else:
        raise EncodingError(f"unknown encoding side {side!r}")

    tl = _target_literal_set(cover)
    enc = LmEncoding(side=side, rows=rows, cols=cols, spec=spec, tl=tl)
    if len(products) > options.max_products:
        enc.too_big = True
        return enc

    num_cells = rows * cols
    num_entries = 1 << spec.num_inputs
    lit_entries = [e for e in tl if not e.is_const]

    # ---- group truth-table entries by their TL value pattern -------------
    # Entries with identical TL patterns constrain the mapping identically;
    # conflicting required values prove the instance unrealizable with this
    # TL set (the realized value at an entry depends on the inputs only
    # through the TL literal values).
    pattern_flags: dict[tuple[bool, ...], list[bool]] = {}
    for e in range(num_entries):
        r1 = bool(required1[e])
        r0 = bool(required0[e])
        if not (r1 or r0):
            continue  # don't-care entry: no constraint
        pattern = tuple(entry.evaluate(e) for entry in lit_entries)
        flags = pattern_flags.setdefault(pattern, [False, False])
        flags[0] |= r1
        flags[1] |= r0
        if flags[0] and flags[1]:
            # Two entries with identical TL values but opposite required
            # outputs: no mapping into TL can realize the target.
            enc.infeasible = True
            return enc
    one_patterns = {
        p: i
        for i, p in enumerate(
            sorted(p for p, f in pattern_flags.items() if f[0])
        )
    }
    zero_patterns = {
        p: i
        for i, p in enumerate(
            sorted(p for p, f in pattern_flags.items() if f[1])
        )
    }

    # Subsume zero patterns: a pattern whose false-TL set contains another
    # zero pattern's false set yields implied (weaker) clauses.
    zero_masks: list[int] = []
    for pattern in zero_patterns:
        mask = 0
        for j, val in enumerate(pattern):
            if not val:
                mask |= 1 << j
        zero_masks.append(mask)
    zero_masks = sorted(set(zero_masks), key=lambda m: m.bit_count())
    kept_zero_masks: list[int] = []
    for mask in zero_masks:
        if not any(prev & mask == prev for prev in kept_zero_masks):
            kept_zero_masks.append(mask)

    # ---- build the CNF ----------------------------------------------------
    cnf = Cnf()
    mapping: dict[tuple[int, int], int] = {}
    for cell in range(num_cells):
        for j in range(len(tl)):
            mapping[(cell, j)] = cnf.pool.var(("m", cell, j))
    enc.mapping_vars = mapping
    for cell in range(num_cells):
        exactly_one(
            cnf,
            [mapping[(cell, j)] for j in range(len(tl))],
            method=options.eo_method,
        )

    const0_idx = tl.index(CONST0)
    const1_idx = tl.index(CONST1)
    product_cells = [
        [i for i in range(num_cells) if mask >> i & 1] for mask in products
    ]

    # Zero entries: cut every path.
    for mask in kept_zero_masks:
        false_idx = [j for j in range(len(lit_entries)) if mask >> j & 1]
        false_idx.append(const0_idx)
        for cells in product_cells:
            clause = [mapping[(i, j)] for i in cells for j in false_idx]
            cnf.add(clause)
        if len(cnf.clauses) > options.max_clauses:
            enc.too_big = True
            return enc

    # One entries: some path conducts end to end.
    for pattern, pid in one_patterns.items():
        true_idx = [j for j, val in enumerate(pattern) if val]
        true_idx.append(const1_idx)
        v_vars = []
        for cell in range(num_cells):
            v = cnf.pool.var(("v", pid, cell))
            v_vars.append(v)
            cnf.add([-v] + [mapping[(cell, j)] for j in true_idx])
        selectors = []
        for p_idx, cells in enumerate(product_cells):
            s = cnf.pool.var(("s", pid, p_idx))
            selectors.append(s)
            for i in cells:
                cnf.add([-s, v_vars[i]])
        cnf.add(selectors)
        if options.row_facts:
            # Fact (i): every level holds a conducting switch.
            for level_cells in levels:
                cnf.add([v_vars[i] for i in level_cells])
            # Fact (ii): consecutive levels are linked somewhere.
            for b_idx, pairs in enumerate(cross):
                b_vars = []
                for k, (a, b) in enumerate(pairs):
                    bv = cnf.pool.var(("b", pid, b_idx, k))
                    b_vars.append(bv)
                    cnf.add([-bv, v_vars[a]])
                    cnf.add([-bv, v_vars[b]])
                cnf.add(b_vars)
        if len(cnf.clauses) > options.max_clauses:
            enc.too_big = True
            return enc

    # Symmetry breaking: mirroring the grid left-right or top-bottom maps
    # both the 4-connected top-bottom paths and the 8-connected left-right
    # paths onto themselves, so the solution set is closed under both
    # mirrors.  Forcing the corner cell's mapping index to be no larger
    # than its mirror image's keeps at least one member of every symmetry
    # orbit while pruning the rest — a pure win on UNSAT proofs.
    if options.symmetry_breaking:
        before_symmetry = len(cnf.clauses)
        num_tl = len(tl)
        corner = 0
        for mirror in (cols - 1, (rows - 1) * cols):
            if mirror == corner:
                continue
            for j in range(num_tl):
                for k in range(j):
                    cnf.add([-mapping[(corner, j)], -mapping[(mirror, k)]])
        enc.symmetry_clauses = len(cnf.clauses) - before_symmetry

    # Degree-based product-realization constraints.
    if options.degree_constraints:
        before_degree = len(cnf.clauses)
        _add_product_realization(
            cnf, cover, products, product_cells, tl, mapping, const1_idx, options
        )
        enc.degree_clauses = len(cnf.clauses) - before_degree
        if len(cnf.clauses) > options.max_clauses:
            enc.too_big = True
            return enc

    enc.cnf = cnf
    return enc


def _add_product_realization(
    cnf: Cnf,
    cover: Sop,
    products: tuple[int, ...],
    product_cells: list[list[int]],
    tl: list[Entry],
    mapping: dict[tuple[int, int], int],
    const1_idx: int,
    options: EncodeOptions,
) -> None:
    """Paper's third encoding step: pin hard products to suitable paths."""
    if not products:
        return
    lattice_degree = max(mask.bit_count() for mask in products)
    tl_index = {
        (entry.var, entry.positive): j
        for j, entry in enumerate(tl)
        if not entry.is_const
    }
    threshold = options.big_product_threshold
    for q_idx, cube in enumerate(cover.cubes):
        q_size = cube.num_literals
        modes = []
        if q_size == cover.degree and cover.degree == lattice_degree:
            # Must use a maximum-degree path, mapped onto q's literals only.
            modes.append(("exact", lambda s: s == lattice_degree, False))
        if q_size > threshold:
            modes.append(("big", lambda s: s > threshold, True))
        for tag, size_ok, allow_const1 in modes:
            q_lits = [tl_index[(v, pos)] for v, pos in cube.literals()]
            if allow_const1:
                q_lits = q_lits + [const1_idx]
            u_vars = []
            for p_idx, cells in enumerate(product_cells):
                if not size_ok(len(cells)) or len(cells) < q_size:
                    continue
                u = cnf.pool.var(("u", tag, q_idx, p_idx))
                u_vars.append(u)
                for i in cells:
                    cnf.add([-u] + [mapping[(i, j)] for j in q_lits])
            if u_vars:
                cnf.add(u_vars)


def best_encoding(
    spec: TargetSpec,
    rows: int,
    cols: int,
    options: EncodeOptions = EncodeOptions(),
    sides: Sequence[str] = ("primal", "dual"),
) -> tuple[Optional[LmEncoding], list[LmEncoding]]:
    """Build the requested sides and pick the smallest-complexity solvable
    one (the paper's selection rule).  Returns (chosen, all_built)."""
    built = [encode_lm(spec, rows, cols, side, options) for side in sides]
    usable = [e for e in built if e.cnf is not None]
    if not usable:
        return None, built
    chosen = min(usable, key=lambda e: e.complexity)
    return chosen, built


# ----------------------------------------------------------- shape families
@dataclass
class ShapeFamily:
    """One LM encoding parameterized over every component-wise smaller shape.

    The monotonicity the dichotomic search already relies on — a
    constant-1 bottom level (pass-through) or a constant-0 edge lane
    (dead) never changes the realized function — makes the envelope CNF
    of shape ``(R, C)`` decide *every* shape ``(r, c) <= (R, C)``: force
    the trailing levels to the conducting constant and the trailing lanes
    to the blocking constant, and the restricted formula is
    equisatisfiable with the sub-shape's own encoding.

    The forcing is done with **selector variables**, one per level and
    one per lane, so the restriction is a set of *assumptions* rather
    than a new CNF: one live solver decides the whole family, keeping its
    learned clauses, variable activities and saved phases from probe to
    probe.  Selector clauses are pure implications (``sel -> cell is the
    inert constant``), so with every selector assumed *negative* the
    formula is exactly the envelope instance.

    Orientation follows the encoding side: the primal encoding's levels
    are rows (inert rows map to constant 1) and its lanes are columns
    (constant 0); the dual encoding swaps the roles, with the constants
    expressed in *encoding* polarity (dual decode flips constants, which
    is irrelevant here because family models are never decoded — SAT
    answers are re-derived by the byte-identical one-shot path).

    A cell on an inert level *and* an inert lane takes the level's
    constant; the lane implication carries the level selector as an
    escape literal.

    Sub-shape probing is gated on :attr:`LmEncoding.degree_clauses` and
    :attr:`LmEncoding.symmetry_clauses` being zero — both clause groups
    quantify over the envelope lattice itself (its maximum-degree paths,
    its mirror orbits) and do not restrict to sub-lattices.
    """

    base: LmEncoding
    level_sel: dict[int, int] = field(default_factory=dict)
    lane_sel: dict[int, int] = field(default_factory=dict)
    selector_clauses: list[list[int]] = field(default_factory=list)
    num_vars: int = 0

    @property
    def rows(self) -> int:
        return self.base.rows

    @property
    def cols(self) -> int:
        return self.base.cols

    def covers(self, rows: int, cols: int) -> bool:
        return rows <= self.base.rows and cols <= self.base.cols

    def _thresholds(self, rows: int, cols: int) -> tuple[int, int]:
        """(level threshold, lane threshold) for a probe of ``rows x cols``."""
        if self.base.side == "primal":
            return rows, cols  # levels are rows, lanes are cols
        return cols, rows  # dual: levels are cols, lanes are rows

    def assumptions(self, rows: int, cols: int) -> list[int]:
        """Selector assumptions activating exactly the ``rows x cols``
        sub-shape: inert (positive) from the threshold up, active
        (negative) below — so a shrinking probe sequence only ever *adds*
        positive assumptions and all previously learned clauses stay
        applicable."""
        level_t, lane_t = self._thresholds(rows, cols)
        lits = [
            (var if index >= level_t else -var)
            for index, var in sorted(self.level_sel.items())
        ]
        lits += [
            (var if index >= lane_t else -var)
            for index, var in sorted(self.lane_sel.items())
        ]
        return lits

    def refuted_shape(
        self, core: Optional[Sequence[int]], rows: int, cols: int
    ) -> tuple[int, int]:
        """Largest shape the assumption core proves unsatisfiable.

        An UNSAT answer under the probe's assumptions comes with a final
        conflict ``core`` (a subset of the assumptions already
        inconsistent with the formula).  Every probe whose assumption set
        contains the core is refuted *without solving*: when the core
        holds no negative (active-side) literals, that is every shape up
        to ``(level of the smallest inert selector in the core, same for
        lanes)`` — often strictly larger than the probed shape.  With
        negative literals in the core (the refutation leaned on some
        level being active) no sound widening exists and the probed shape
        is returned unchanged.
        """
        if core is None:
            return rows, cols
        sel_index = {var: ("level", i) for i, var in self.level_sel.items()}
        sel_index.update(
            {var: ("lane", i) for i, var in self.lane_sel.items()}
        )
        level_min: Optional[int] = None
        lane_min: Optional[int] = None
        for lit in core:
            kind_index = sel_index.get(abs(lit))
            if kind_index is None:
                continue
            kind, index = kind_index
            if lit < 0:
                return rows, cols  # refutation needs this dimension active
            if kind == "level":
                level_min = index if level_min is None else min(level_min, index)
            else:
                lane_min = index if lane_min is None else min(lane_min, index)
        n_levels = len(self.level_sel)
        n_lanes = len(self.lane_sel)
        level_t = level_min if level_min is not None else n_levels
        lane_t = lane_min if lane_min is not None else n_lanes
        if self.base.side == "primal":
            return level_t, lane_t
        return lane_t, level_t


def shape_family(enc: LmEncoding) -> Optional[ShapeFamily]:
    """Extend a built encoding into a :class:`ShapeFamily`, or ``None``
    when sub-shape probing on it would be unsound (no CNF, or degree /
    symmetry clauses present — see the class docstring)."""
    if enc.cnf is None or enc.degree_clauses or enc.symmetry_clauses:
        return None
    tl_const0 = enc.tl.index(CONST0)
    tl_const1 = enc.tl.index(CONST1)
    family = ShapeFamily(base=enc, num_vars=enc.cnf.num_vars)
    if enc.side == "primal":
        n_levels, n_lanes = enc.rows, enc.cols
        cell_at = lambda level, lane: level * enc.cols + lane  # noqa: E731
    else:
        n_levels, n_lanes = enc.cols, enc.rows
        cell_at = lambda level, lane: lane * enc.cols + level  # noqa: E731
    for i in range(n_levels):
        family.num_vars += 1
        family.level_sel[i] = family.num_vars
    for j in range(n_lanes):
        family.num_vars += 1
        family.lane_sel[j] = family.num_vars
    mapping = enc.mapping_vars
    for i in range(n_levels):
        level_var = family.level_sel[i]
        for j in range(n_lanes):
            cell = cell_at(i, j)
            family.selector_clauses.append(
                [-level_var, mapping[(cell, tl_const1)]]
            )
            family.selector_clauses.append(
                [-family.lane_sel[j], level_var, mapping[(cell, tl_const0)]]
            )
    return family
