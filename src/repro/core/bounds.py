"""Initial bounds for the LS search (paper, Section III-B).

Every upper-bound method returns a **verified** :class:`BoundResult`: the
constructed lattice assignment is checked against the target truth table
by the independent connectivity checker before being reported.  The
methods:

* **DP** (dual production, Altun & Riedel): an ``m x n`` lattice where the
  n columns are the target's products, the m rows its dual's products, and
  each cell holds a literal shared by its row and column products.
* **PS** (product separation, Gange et al.): one column per product padded
  with constant 1, columns separated by constant-0 isolation columns —
  a ``degree x (2n-1)`` lattice.
* **DPS** (dual product separation, Morgul & Altun): one row per dual
  product padded with constant 0, rows separated by constant-1 rows — a
  ``(2m-1) x gamma`` lattice.
* **IPS / IDPS** (this paper): improved variants that spend fewer isolation
  columns/rows: single-literal products isolate by themselves, two-literal
  products fold into one self-isolating column, and product pairs whose
  two-product subfunction has a dual of at most ``degree`` products share a
  ``degree x 2`` DP block.  The constructions here follow those rules
  greedily and *verify* the resulting lattice, inserting an explicit
  isolation column/row whenever a greedy merge would change the function —
  so the returned bound is always sound, merely possibly one column wider
  than the paper's hand construction.

The **DS** (divide and synthesize) method lives in
:mod:`repro.core.decompose` because it calls JANUS recursively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import SynthesisError
from repro.boolf.cube import Cube
from repro.boolf.minimize import minimize
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable
from repro.core.target import TargetSpec
from repro.lattice.assignment import CONST0, CONST1, Entry, LatticeAssignment

__all__ = [
    "BoundResult",
    "ub_dp",
    "ub_ps",
    "ub_dps",
    "ub_ips",
    "ub_idps",
    "best_upper_bound",
    "combine_bounds",
    "UB_METHODS",
]


@dataclass
class BoundResult:
    """An upper bound witnessed by a verified lattice assignment."""

    method: str
    assignment: LatticeAssignment

    @property
    def rows(self) -> int:
        return self.assignment.rows

    @property
    def cols(self) -> int:
        return self.assignment.cols

    @property
    def size(self) -> int:
        return self.assignment.size

    def __repr__(self) -> str:
        return f"BoundResult({self.method}, {self.rows}x{self.cols})"


def _verify(result: BoundResult, spec: TargetSpec) -> BoundResult:
    if not spec.accepts(result.assignment.realized_truthtable()):
        raise SynthesisError(
            f"{result.method} bound construction failed verification on "
            f"{spec.name} ({result.rows}x{result.cols})"
        )
    return result


def _require_synthesizable(spec: TargetSpec) -> None:
    if spec.is_constant:
        raise SynthesisError(
            "bound constructions need a non-constant target; constants are "
            "realized directly by the JANUS driver"
        )


def _column_entries(cube: Cube, rows: int, fill: Entry) -> list[Entry]:
    """A product as a column: its literals from the top, then ``fill``."""
    lits = [Entry.lit(v, pos) for v, pos in cube.literals()]
    if len(lits) > rows:
        raise SynthesisError("product does not fit in the column")
    return lits + [fill] * (rows - len(lits))


# --------------------------------------------------------------------- DP
def ub_dp(spec: TargetSpec) -> BoundResult:
    """Dual-production construction: cell (i, j) gets a literal common to
    dual product i and product j (such a literal always exists)."""
    _require_synthesizable(spec)
    prods = spec.isop.cubes
    duals = spec.dual_isop.cubes
    rows, cols = len(duals), len(prods)
    entries: list[Entry] = []
    for dual_cube in duals:
        for cube in prods:
            common = _common_literal(dual_cube, cube)
            if common is None:
                raise SynthesisError(
                    "no shared literal between a product and a dual product; "
                    "the covers are inconsistent"
                )
            entries.append(Entry.lit(*common))
    la = LatticeAssignment(rows, cols, entries, spec.num_inputs, spec.name_list())
    return _verify(BoundResult("dp", la), spec)


def _common_literal(a: Cube, b: Cube) -> Optional[tuple[int, bool]]:
    both_pos = a.pos & b.pos
    if both_pos:
        return (both_pos & -both_pos).bit_length() - 1, True
    both_neg = a.neg & b.neg
    if both_neg:
        return (both_neg & -both_neg).bit_length() - 1, False
    return None


# --------------------------------------------------------------------- PS
def ub_ps(spec: TargetSpec) -> BoundResult:
    """Product separation: degree x (2n - 1)."""
    _require_synthesizable(spec)
    rows = spec.degree
    columns: list[list[Entry]] = []
    for k, cube in enumerate(spec.isop.cubes):
        if k > 0:
            columns.append([CONST0] * rows)
        columns.append(_column_entries(cube, rows, CONST1))
    la = _from_columns(rows, columns, spec)
    return _verify(BoundResult("ps", la), spec)


def _from_columns(
    rows: int, columns: list[list[Entry]], spec: TargetSpec
) -> LatticeAssignment:
    cols = len(columns)
    entries = [columns[c][r] for r in range(rows) for c in range(cols)]
    return LatticeAssignment(rows, cols, entries, spec.num_inputs, spec.name_list())


# -------------------------------------------------------------------- DPS
def ub_dps(spec: TargetSpec) -> BoundResult:
    """Dual product separation: (2m - 1) x gamma.

    Rows carry the dual products (padded with constant 0) separated by
    all-1 routing rows; the top-bottom function is then the product of the
    dual products' literal sums, i.e. the target's POS — the target itself.
    """
    _require_synthesizable(spec)
    cols = spec.dual_degree
    rows_entries: list[list[Entry]] = []
    for k, cube in enumerate(spec.dual_isop.cubes):
        if k > 0:
            rows_entries.append([CONST1] * cols)
        rows_entries.append(_column_entries(cube, cols, CONST0))
    entries = [e for row in rows_entries for e in row]
    la = LatticeAssignment(
        len(rows_entries), cols, entries, spec.num_inputs, spec.name_list()
    )
    return _verify(BoundResult("dps", la), spec)


# -------------------------------------------------------------------- IPS
def ub_ips(spec: TargetSpec) -> BoundResult:
    """Improved product separation (paper's three isolation-saving rules,
    applied greedily with per-step verification)."""
    _require_synthesizable(spec)
    rows = spec.degree
    singles = [c for c in spec.isop.cubes if c.num_literals == 1]
    doubles = [c for c in spec.isop.cubes if c.num_literals == 2]
    bigs = [c for c in spec.isop.cubes if c.num_literals > 2]

    blocks: list[_Block] = []

    # Rule (iii): pair big products on a degree x 2 DP block when the
    # two-product subfunction's dual stays within `degree` products.
    used = [False] * len(bigs)
    for i in range(len(bigs)):
        if used[i]:
            continue
        paired = False
        for j in range(i + 1, len(bigs)):
            if used[j]:
                continue
            block = _pair_block(bigs[i], bigs[j], rows, spec)
            if block is not None:
                pair_tt = TruthTable.from_cubes(
                    [bigs[i], bigs[j]], spec.num_inputs
                )
                blocks.append(_Block("pair", block, pair_tt))
                used[i] = used[j] = True
                paired = True
                break
        if not paired:
            blocks.append(
                _Block(
                    "big",
                    [_column_entries(bigs[i], rows, CONST1)],
                    TruthTable.from_cube(bigs[i]),
                )
            )
            used[i] = True

    # Rule (ii): two-literal products become single self-isolating columns
    # (one literal on the last row, the other on all rows above).
    for cube in doubles:
        (v1, p1), (v2, p2) = list(cube.literals())
        column = [Entry.lit(v1, p1)] * (rows - 1) + [Entry.lit(v2, p2)]
        blocks.append(_Block("double", [column], TruthTable.from_cube(cube)))

    # Rule (i): single-literal products are all-same-literal columns; any
    # path straying through one picks up that literal and is absorbed by
    # the single-literal product, so they are safe separators.
    separators = [
        [Entry.lit(v, pos)] * rows
        for cube in singles
        for v, pos in cube.literals()
    ]

    la = _assemble_separated(rows, blocks, separators, spec, orient_rows=False)
    return _verify(BoundResult("ips", la), spec)


def _pair_block(
    a: Cube, b: Cube, rows: int, spec: TargetSpec
) -> Optional[list[list[Entry]]]:
    """Degree x 2 realization of ``a + b`` via DP, or None if ineligible."""
    sub = Sop([a, b], spec.num_inputs, spec.name_list())
    sub_tt = sub.to_truthtable()
    dual_cover = minimize(sub_tt.dual(), names=spec.name_list())
    if dual_cover.num_products > rows:
        return None
    sub_spec = TargetSpec(
        name="pair", tt=sub_tt, isop=sub, dual_isop=dual_cover,
        names=tuple(spec.names) if spec.names else None,
    )
    try:
        dp = ub_dp(sub_spec)
    except SynthesisError:
        return None
    if dp.cols != 2:
        return None
    padded = dp.assignment.padded_bottom(rows - dp.rows, CONST1)
    return [
        [padded.entry(r, c) for r in range(rows)] for c in range(2)
    ]


@dataclass
class _Block:
    """A placed group of columns (or rows) realizing a partial function."""

    kind: str  # "pair" | "big" | "double"
    lanes: list[list[Entry]]  # columns for IPS, rows for IDPS
    part_tt: TruthTable  # the products this block is responsible for


def _assemble_separated(
    rows: int,
    blocks: list[_Block],
    separators: list[list[Entry]],
    spec: TargetSpec,
    orient_rows: bool,
) -> LatticeAssignment:
    """Lay blocks side by side, spending isolation only at unsafe junctions.

    A junction between two blocks is *locally safe* when the two-block
    mini-lattice realizes a function that still contains both blocks' own
    products and stays inside the target (for the OR-composed primal side)
    — respectively equals the AND of the blocks' POS factors (dual side).
    Blocks are chained greedily to maximize safe junctions; unsafe ones get
    a separator (a leftover single-literal lane if available, else a
    constant lane).  The result is verified globally; failures fall back to
    full isolation, which is always correct.
    """
    sep_pool = list(separators)
    tt = spec.isop.to_truthtable()

    def build(lanes: list[list[Entry]]) -> LatticeAssignment:
        la = _from_columns(rows, lanes, spec)
        return la.transposed() if orient_rows else la

    def junction_safe(a: _Block, b: _Block) -> bool:
        mini = build(a.lanes + b.lanes)
        realized = mini.realized_truthtable()
        if orient_rows:
            # Dual side: the stack must realize exactly the AND of factors.
            return realized == (a.part_tt & b.part_tt)
        combined = a.part_tt | b.part_tt
        return combined.implies(realized) and realized.implies(tt)

    if not blocks and not sep_pool:
        raise SynthesisError("no products to place")

    # Greedy chain: repeatedly extend with a block forming a safe junction.
    remaining = list(blocks)
    chain: list[_Block] = []
    safe_after: list[bool] = []  # safe_after[i]: junction i/i+1 is safe
    if remaining:
        chain.append(remaining.pop(0))
    while remaining:
        last = chain[-1]
        pick = None
        for idx, cand in enumerate(remaining):
            if junction_safe(last, cand):
                pick = idx
                break
        if pick is None:
            chain.append(remaining.pop(0))
            safe_after.append(False)
        else:
            chain.append(remaining.pop(pick))
            safe_after.append(True)

    iso_const = CONST1 if orient_rows else CONST0
    lanes: list[list[Entry]] = []
    kinds: list[str] = []
    for i, block in enumerate(chain):
        if i > 0 and not safe_after[i - 1]:
            lanes.append(sep_pool.pop() if sep_pool else [iso_const] * rows)
            kinds.append("sep")
        lanes.extend(block.lanes)
        kinds.extend([block.kind] * len(block.lanes))
    # Leftover separators still realize their own single-literal products.
    for sep in sep_pool:
        lanes.append(sep)
        kinds.append("sep")
    if not lanes:
        raise SynthesisError("no products to place")

    candidate = build(lanes)
    if candidate.realizes(tt):
        return candidate

    # Greedy layout failed (a multi-block interaction): isolate every
    # junction.  Constant isolation makes the function the OR (resp. AND)
    # of the block functions, which is the target by construction.
    fully: list[list[Entry]] = []
    boundary = set()
    pos = 0
    for block in chain:
        pos += len(block.lanes)
        boundary.add(pos)
    flat = [lane for block in chain for lane in block.lanes]
    for idx, lane in enumerate(flat):
        if idx > 0 and idx in {b for b in boundary if b < len(flat)}:
            fully.append([iso_const] * rows)
        fully.append(lane)
    for sep in separators:
        fully.append([iso_const] * rows)
        fully.append(sep)
    return build(fully)


# ------------------------------------------------------------------- IDPS
def ub_idps(spec: TargetSpec) -> BoundResult:
    """Improved dual product separation: the IPS rules applied to the dual
    cover, with rows in place of columns and constant-1 isolation."""
    _require_synthesizable(spec)
    cols = spec.dual_degree
    rows_cover = spec.dual_isop
    singles = [c for c in rows_cover.cubes if c.num_literals == 1]
    doubles = [c for c in rows_cover.cubes if c.num_literals == 2]
    bigs = [c for c in rows_cover.cubes if c.num_literals > 2]

    blocks: list[_Block] = []
    used = [False] * len(bigs)
    for i in range(len(bigs)):
        if used[i]:
            continue
        paired = False
        for j in range(i + 1, len(bigs)):
            if used[j]:
                continue
            block = _dual_pair_block(bigs[i], bigs[j], cols, spec)
            if block is not None:
                factor = _clause_tt(bigs[i], spec) & _clause_tt(bigs[j], spec)
                blocks.append(_Block("pair", block, factor))
                used[i] = used[j] = True
                paired = True
                break
        if not paired:
            blocks.append(
                _Block(
                    "big",
                    [_column_entries(bigs[i], cols, CONST0)],
                    _clause_tt(bigs[i], spec),
                )
            )
            used[i] = True
    for cube in doubles:
        (v1, p1), (v2, p2) = list(cube.literals())
        row = [Entry.lit(v1, p1)] * (cols - 1) + [Entry.lit(v2, p2)]
        blocks.append(_Block("double", [row], _clause_tt(cube, spec)))
    separators = [
        [Entry.lit(v, pos)] * cols
        for cube in singles
        for v, pos in cube.literals()
    ]
    la = _assemble_separated(cols, blocks, separators, spec, orient_rows=True)
    if not spec.accepts(la.realized_truthtable()):
        # Fall back to plain DPS if even the hardened dual layout fails
        # (possible because dual-side routing is subtler than primal).
        return BoundResult("idps", ub_dps(spec).assignment)
    return _verify(BoundResult("idps", la), spec)


def _clause_tt(dual_cube: Cube, spec: TargetSpec) -> TruthTable:
    """The POS factor of a dual product: the OR of its literals."""
    values = TruthTable.zeros(spec.num_inputs)
    for v, pos in dual_cube.literals():
        lit_tt = TruthTable.variable(v, spec.num_inputs)
        values = values | (lit_tt if pos else ~lit_tt)
    return values


def _dual_pair_block(
    a: Cube, b: Cube, cols: int, spec: TargetSpec
) -> Optional[list[list[Entry]]]:
    """2 x cols block realizing the POS factor pair (a + b clauses)."""
    # The subfunction h with dual products {a, b} is h = (sum of a's
    # literals) * (sum of b's literals).
    h_dual = Sop([a, b], spec.num_inputs, spec.name_list())
    h_tt = h_dual.to_truthtable().dual()
    h_cover = minimize(h_tt, names=spec.name_list())
    if h_cover.num_products > cols:
        return None
    sub_spec = TargetSpec(
        name="dual-pair", tt=h_tt, isop=h_cover, dual_isop=h_dual,
        names=tuple(spec.names) if spec.names else None,
    )
    try:
        dp = ub_dp(sub_spec)
    except SynthesisError:
        return None
    if dp.rows != 2:
        return None
    # Pad to the full width with inert constant-0 columns.
    padded_cols: list[list[Entry]] = []
    for c in range(cols):
        if c < dp.cols:
            padded_cols.append([dp.assignment.entry(r, c) for r in range(2)])
        else:
            padded_cols.append([CONST0, CONST0])
    # Return as rows (2 rows of `cols` entries).
    return [[padded_cols[c][r] for c in range(cols)] for r in range(2)]


UB_METHODS: dict[str, Callable[[TargetSpec], BoundResult]] = {
    "dp": ub_dp,
    "ps": ub_ps,
    "dps": ub_dps,
    "ips": ub_ips,
    "idps": ub_idps,
}


def combine_bounds(
    spec: TargetSpec, results: dict[str, BoundResult]
) -> tuple[BoundResult, dict[str, BoundResult]]:
    """Pick the winning bound with the canonical tie-break (size, rows).

    Shared by the serial path and the parallel engine so both select the
    same winner from the same per-method results.
    """
    if not results:
        raise SynthesisError(f"no upper-bound construction succeeded on {spec.name}")
    best = min(results.values(), key=lambda r: (r.size, r.rows))
    return best, results


def best_upper_bound(
    spec: TargetSpec, methods: tuple[str, ...] = ("dp", "ps", "dps", "ips", "idps")
) -> tuple[BoundResult, dict[str, BoundResult]]:
    """Run the selected constructions; return (best, all results)."""
    results: dict[str, BoundResult] = {}
    for name in methods:
        try:
            results[name] = UB_METHODS[name](spec)
        except SynthesisError:
            continue
    return combine_bounds(spec, results)
