"""JANUS core: targets, bounds, LM encoding, synthesis drivers, baselines.

The paper's algorithm proper, independent of any parallel/caching
machinery:

* :class:`TargetSpec` — the function to realize (truth table +
  don't-cares + minimized covers), the input type every driver takes;
* :func:`encode_lm` / :class:`LmEncoding` — the lattice-mapping-to-SAT
  encoding (primal and dual sides), plus the :class:`ShapeFamily`
  selector-variable extension that lets one live solver decide whole
  families of shapes under assumptions;
* bounds — structural lower bounds and the constructive upper-bound
  ladder (``dp``/``ps``/``dps``/``ips``/``idps`` and the recursive
  ``ds`` decomposition);
* :func:`synthesize` — the dichotomic JANUS driver, parameterized by a
  :class:`SerialProber` (the seam :class:`repro.engine.ParallelEngine`
  plugs into); :class:`IncrementalProber` keeps one solver per
  instance; ``solve_lm_lazy`` is the CEGAR alternative;
* :mod:`repro.core.baselines` — the paper's comparison algorithms
  (exact/approx of Gange et al., the shape heuristic, p-circuits);
* autosymmetry and D-reducibility analyses used by decomposition.
"""

from repro.core.target import TargetSpec
from repro.core.structural import (
    shapes_of_area,
    sizes_coverable,
    structural_check,
    structural_lower_bound,
)
from repro.core.encoder import EncodeOptions, LmEncoding, best_encoding, encode_lm
from repro.core.bounds import (
    BoundResult,
    UB_METHODS,
    best_upper_bound,
    ub_dp,
    ub_dps,
    ub_idps,
    ub_ips,
    ub_ps,
)
from repro.core.decompose import partition_products, shrink_rows, ub_ds
from repro.core.janus import (
    JanusOptions,
    LmAttempt,
    LmOutcome,
    SynthesisResult,
    candidate_shapes,
    fit_columns,
    make_spec,
    solve_lm,
    synthesize,
)
from repro.core.multi import (
    MultiFunctionResult,
    merge_straightforward,
    synthesize_multi,
)
from repro.core.baselines import (
    approx_restricted,
    decompose_pcircuit,
    exact_search,
    heuristic_candidates,
)
from repro.core.autosymmetric import (
    AutosymmetricResult,
    autosymmetry_degree,
    linear_space,
    reduce_autosymmetric,
    synthesize_autosymmetric,
)
from repro.core.cegar import CegarOutcome, CegarStats, solve_lm_cegar
from repro.core.dreducible import (
    AffineSpace,
    DReducibleReduction,
    DReducibleResult,
    affine_hull,
    is_dreducible,
    reduce_dreducible,
    synthesize_dreducible,
)

__all__ = [
    "TargetSpec",
    "structural_check",
    "structural_lower_bound",
    "sizes_coverable",
    "shapes_of_area",
    "EncodeOptions",
    "LmEncoding",
    "encode_lm",
    "best_encoding",
    "BoundResult",
    "UB_METHODS",
    "best_upper_bound",
    "ub_dp",
    "ub_ps",
    "ub_dps",
    "ub_ips",
    "ub_idps",
    "ub_ds",
    "partition_products",
    "shrink_rows",
    "JanusOptions",
    "LmAttempt",
    "LmOutcome",
    "SynthesisResult",
    "synthesize",
    "solve_lm",
    "candidate_shapes",
    "fit_columns",
    "make_spec",
    "MultiFunctionResult",
    "synthesize_multi",
    "merge_straightforward",
    "approx_restricted",
    "exact_search",
    "heuristic_candidates",
    "decompose_pcircuit",
    "AutosymmetricResult",
    "autosymmetry_degree",
    "linear_space",
    "reduce_autosymmetric",
    "synthesize_autosymmetric",
    "CegarOutcome",
    "CegarStats",
    "solve_lm_cegar",
    "AffineSpace",
    "DReducibleReduction",
    "DReducibleResult",
    "affine_hull",
    "is_dreducible",
    "reduce_dreducible",
    "synthesize_dreducible",
]
