"""Target function specification for lattice synthesis.

A :class:`TargetSpec` bundles everything JANUS needs about a target
function: its truth table, a minimum-product ISOP (the paper obtains this
from espresso; we use :func:`repro.boolf.minimize`), the ISOP of its dual,
and the derived statistics (#inputs, #prime implicants, degree) that the
paper reports per benchmark instance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import DimensionError
from repro.boolf.minimize import minimize
from repro.boolf.parse import parse_sop
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable

__all__ = ["TargetSpec"]


@dataclass(frozen=True)
class TargetSpec:
    """A synthesis target: truth table plus minimized primal/dual covers.

    ``dc`` optionally marks don't-care minterms (an extension beyond the
    paper, which synthesizes completely specified functions): any realized
    function between ``tt`` and ``tt | dc`` is accepted.  The covers are
    minimized over that interval, and ``dual_isop`` is the dual of the
    *chosen* cover so the DP/DPS constructions stay consistent.
    """

    name: str
    tt: TruthTable
    isop: Sop
    dual_isop: Sop
    names: Optional[tuple[str, ...]] = None
    dc: Optional[TruthTable] = None

    # ------------------------------------------------------------- builders
    @classmethod
    def from_truthtable(
        cls,
        tt: TruthTable,
        name: str = "f",
        names: Optional[Sequence[str]] = None,
        exact: bool = True,
        dc: Optional[TruthTable] = None,
    ) -> "TargetSpec":
        """Build a spec by minimizing ``tt`` (within ``dc``) and its dual."""
        name_list = list(names) if names is not None else None
        cover = minimize(tt, dc, names=name_list, exact=exact)
        if dc is None:
            dual_cover = minimize(tt.dual(), names=name_list, exact=exact)
        else:
            # Dual of the concrete function the cover picked.
            dual_cover = minimize(
                cover.to_truthtable().dual(), names=name_list, exact=exact
            )
        return cls(
            name=name,
            tt=tt,
            isop=cover.sorted(),
            dual_isop=dual_cover.sorted(),
            names=tuple(name_list) if name_list else None,
            dc=dc if dc is not None and not dc.is_zero() else None,
        )

    @classmethod
    def from_sop(cls, sop: Sop, name: str = "f", exact: bool = True) -> "TargetSpec":
        return cls.from_truthtable(
            sop.to_truthtable(), name=name, names=sop.names, exact=exact
        )

    @classmethod
    def from_string(cls, text: str, name: str = "f", exact: bool = True) -> "TargetSpec":
        """Parse an SOP expression (see :mod:`repro.boolf.parse`)."""
        return cls.from_sop(parse_sop(text), name=name, exact=exact)

    def __post_init__(self) -> None:
        if self.isop.num_vars != self.tt.num_vars:
            raise DimensionError("isop universe differs from truth table")
        if self.dual_isop.num_vars != self.tt.num_vars:
            raise DimensionError("dual isop universe differs from truth table")

    # ------------------------------------------------------------ accessors
    @property
    def num_inputs(self) -> int:
        return self.tt.num_vars

    @property
    def num_products(self) -> int:
        """#pi in the paper's tables: products of the minimized cover."""
        return self.isop.num_products

    @property
    def num_dual_products(self) -> int:
        return self.dual_isop.num_products

    @property
    def degree(self) -> int:
        """Maximum literal count over the cover's products (paper's delta)."""
        return self.isop.degree

    @property
    def dual_degree(self) -> int:
        """Degree of the dual cover (paper's gamma)."""
        return self.dual_isop.degree

    @property
    def upper(self) -> TruthTable:
        """Largest admissible realized function: onset plus don't-cares."""
        if self.dc is None:
            return self.tt
        return self.tt | self.dc

    @property
    def is_constant(self) -> bool:
        return self.tt.is_zero() or self.tt.is_one()

    def name_list(self) -> Optional[list[str]]:
        return list(self.names) if self.names else None

    def accepts(self, realized: TruthTable) -> bool:
        """True iff ``realized`` lies in the admissible interval."""
        return self.tt.implies(realized) and realized.implies(self.upper)

    def validate(self) -> None:
        """Check internal consistency (covers match the table); for tests."""
        cover_tt = self.isop.to_truthtable()
        if not (self.tt.implies(cover_tt) and cover_tt.implies(self.upper)):
            raise DimensionError("isop does not realize the truth table")
        if self.dual_isop.to_truthtable() != cover_tt.dual():
            raise DimensionError("dual isop does not realize the dual")
        if self.dc is not None and (self.tt.values & self.dc.values).any():
            raise DimensionError("onset and don't-care set overlap")

    def __repr__(self) -> str:
        return (
            f"TargetSpec({self.name!r}, in={self.num_inputs}, "
            f"pi={self.num_products}, deg={self.degree})"
        )
