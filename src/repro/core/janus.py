"""JANUS: dichotomic lattice synthesis driven by SAT (paper, Section III).

:func:`synthesize` implements the top-level algorithm:

1. compute the structural lower bound ``lb`` and the best initial upper
   bound ``ub`` over the DP/PS/DPS/IPS/IDPS/DS constructions (all bounds
   come with verified assignments);
2. while ``lb < ub``: probe the middle area ``mp``, generate the maximal
   candidate shapes of area at most ``mp``, and solve the LM problem for
   each candidate (choosing the cheaper of the primal/dual encodings); a
   SAT answer improves ``ub`` (and the stored assignment), otherwise
   ``lb`` becomes ``mp + 1``;
3. return the best verified assignment.

Solver timeouts are treated as "not realizable", exactly as the paper's
1200-second SAT limit is — which is one of the reasons JANUS is an
*approximate* algorithm.  Budgets here are expressed in conflicts (for
determinism) with an optional wall-clock cap.
"""

from __future__ import annotations

import json
import time
from collections import OrderedDict
from dataclasses import asdict, dataclass, field, replace
from typing import Optional, Union

from repro.errors import SynthesisError
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable
from repro.core.bounds import best_upper_bound
from repro.core.encoder import (
    EncodeOptions,
    LmEncoding,
    ShapeFamily,
    best_encoding,
    shape_family,
)
from repro.core.structural import structural_check, structural_lower_bound
from repro.core.target import TargetSpec
from repro.lattice.assignment import CONST0, CONST1, Entry, LatticeAssignment
from repro.lattice.paths import left_right_paths8, top_bottom_paths
from repro.sat.solver import CdclSolver, SolveResult, SolverConfig, solve_cnf

__all__ = [
    "IncrementalProber",
    "JanusOptions",
    "LmAttempt",
    "LmOutcome",
    "ProbeReuseStats",
    "SerialProber",
    "SERIAL_PROBER",
    "SynthesisResult",
    "solve_lm",
    "synthesize",
    "candidate_shapes",
    "fit_columns",
    "make_spec",
]


@dataclass(frozen=True)
class JanusOptions:
    """Configuration for a JANUS run (defaults follow the paper)."""

    max_conflicts: int = 60_000  # per LM SAT call; determinism-friendly
    lm_time_limit: Optional[float] = None  # optional per-call wall clock
    # CDCL tuning shared by every solver the run builds (probes, CEGAR,
    # equivalence checks).  The engine-level budgets above still win over
    # any budget the config carries.
    solver: SolverConfig = field(default_factory=SolverConfig)
    encode: EncodeOptions = field(default_factory=EncodeOptions)
    ub_methods: tuple[str, ...] = ("dp", "ps", "dps", "ips", "idps", "ds")
    sides: tuple[str, ...] = ("primal", "dual")
    verify: bool = True
    trim_solutions: bool = True  # drop inert edge lanes from SAT decodes
    max_lattice_products: int = 20_000  # skip candidate shapes richer than this
    ds_depth: int = 1  # recursion depth available to the DS bound
    exact_minimization: bool = True

    def for_subproblems(self) -> "JanusOptions":
        """Options for recursive JANUS calls inside DS / MF."""
        methods = tuple(m for m in self.ub_methods if m != "ds")
        return replace(
            self, ub_methods=methods, ds_depth=max(0, self.ds_depth - 1)
        )


@dataclass
class LmAttempt:
    """Record of one LM probe during the search."""

    rows: int
    cols: int
    status: str  # "sat" | "unsat" | "unknown" | "structural" | "skipped"
    side: Optional[str] = None
    complexity: int = 0
    conflicts: int = 0
    wall_time: float = 0.0
    cached: bool = False  # answered from a persistent result cache
    propagations: int = 0  # SAT propagations this probe cost
    restarts: int = 0  # solver restarts this probe performed
    reused: bool = False  # answered by a live per-instance solver / memo
    pruned: bool = False  # answered by shape domination, no solver at all
    core: str = "pure"  # propagation core that served the probe


@dataclass
class LmOutcome:
    status: str
    assignment: Optional[LatticeAssignment]
    attempt: LmAttempt


@dataclass
class SynthesisResult:
    """Final outcome of a JANUS run."""

    spec: TargetSpec
    assignment: LatticeAssignment
    lower_bound: int  # final (possibly search-refined) lower bound
    initial_upper_bound: int
    upper_bounds: dict[str, tuple[int, int]]
    attempts: list[LmAttempt] = field(default_factory=list)
    wall_time: float = 0.0
    method: str = "janus"
    initial_lower_bound: int = 0  # the paper's Table II "lb" column

    @property
    def rows(self) -> int:
        return self.assignment.rows

    @property
    def cols(self) -> int:
        return self.assignment.cols

    @property
    def size(self) -> int:
        """Number of switches — the LS objective."""
        return self.assignment.size

    @property
    def is_provably_minimum(self) -> bool:
        """True when the search closed the gap to the structural bound."""
        return self.size == self.lower_bound

    @property
    def shape(self) -> str:
        return f"{self.rows}x{self.cols}"

    def __repr__(self) -> str:
        return (
            f"SynthesisResult({self.spec.name!r}, {self.shape}, "
            f"size={self.size}, lb={self.lower_bound})"
        )


def make_spec(
    target: Union[TargetSpec, Sop, TruthTable, str],
    name: str = "f",
    exact: bool = True,
) -> TargetSpec:
    """Coerce any accepted target form into a :class:`TargetSpec`."""
    if isinstance(target, TargetSpec):
        return target
    if isinstance(target, Sop):
        return TargetSpec.from_sop(target, name=name, exact=exact)
    if isinstance(target, TruthTable):
        return TargetSpec.from_truthtable(target, name=name, exact=exact)
    if isinstance(target, str):
        return TargetSpec.from_string(target, name=name, exact=exact)
    raise SynthesisError(f"cannot interpret target of type {type(target)!r}")


# ----------------------------------------------------------------- LM probe
def _precheck_lm(
    spec: TargetSpec,
    rows: int,
    cols: int,
    options: JanusOptions,
    attempt: LmAttempt,
    start: float,
) -> Optional[LmOutcome]:
    """Solver-free checks shared by the one-shot and incremental paths."""
    if not structural_check(spec, rows, cols):
        attempt.wall_time = time.monotonic() - start
        return LmOutcome("unsat", None, attempt)
    if (
        len(top_bottom_paths(rows, cols)) > options.max_lattice_products
        and len(left_right_paths8(rows, cols)) > options.max_lattice_products
    ):
        attempt.status = "skipped"
        attempt.wall_time = time.monotonic() - start
        return LmOutcome("unknown", None, attempt)
    return None


def _choose_encoding(
    spec: TargetSpec, rows: int, cols: int, options: JanusOptions
) -> tuple[Optional[LmEncoding], list[LmEncoding]]:
    enc_options = replace(
        options.encode, max_products=options.max_lattice_products
    )
    return best_encoding(spec, rows, cols, enc_options, sides=options.sides)


def _decode_sat(
    spec: TargetSpec,
    chosen: LmEncoding,
    result: SolveResult,
    options: JanusOptions,
) -> LatticeAssignment:
    assignment = chosen.decode(result)
    if options.verify and not spec.accepts(assignment.realized_truthtable()):
        raise SynthesisError(
            f"decoded {chosen.rows}x{chosen.cols} assignment "
            f"({chosen.side} side) does not realize {spec.name}: encoder bug"
        )
    if options.trim_solutions:
        assignment = assignment.trimmed()
    return assignment


def solve_lm(
    spec: TargetSpec,
    rows: int,
    cols: int,
    options: JanusOptions = JanusOptions(),
) -> LmOutcome:
    """Decide one LM instance: structural check, encode both sides, solve
    the cheaper one, decode and verify."""
    start = time.monotonic()
    attempt = LmAttempt(rows=rows, cols=cols, status="structural")
    early = _precheck_lm(spec, rows, cols, options, attempt, start)
    if early is not None:
        return early

    chosen, built = _choose_encoding(spec, rows, cols, options)
    if chosen is None:
        if any(e.infeasible for e in built):
            attempt.status = "unsat"
            attempt.wall_time = time.monotonic() - start
            return LmOutcome("unsat", None, attempt)
        attempt.status = "skipped"
        attempt.wall_time = time.monotonic() - start
        return LmOutcome("unknown", None, attempt)

    attempt.side = chosen.side
    attempt.complexity = chosen.complexity
    result = solve_cnf(
        chosen.cnf,
        max_conflicts=options.max_conflicts,
        max_time=options.lm_time_limit,
        config=options.solver,
    )
    attempt.conflicts = result.stats.conflicts
    attempt.propagations = result.stats.propagations
    attempt.restarts = result.stats.restarts
    attempt.core = result.stats.core
    attempt.status = result.status
    attempt.wall_time = time.monotonic() - start
    if not result.is_sat:
        return LmOutcome(result.status, None, attempt)
    assignment = _decode_sat(spec, chosen, result, options)
    return LmOutcome("sat", assignment, attempt)


# ----------------------------------------------------------------- probers
class SerialProber:
    """Default LM probe strategy: solve instances one at a time, in order.

    The JANUS driver talks to its SAT backend exclusively through this
    three-method interface, which is what lets
    :class:`repro.engine.ParallelEngine` substitute a process-pool/cached
    implementation without touching the search logic.  Any replacement must
    preserve the *serial semantics*: ``first_sat`` returns the first shape
    (in the given order) that answers SAT, and appends one attempt per
    probed shape, stopping at the winner — so results stay byte-identical
    to this prober no matter how the probes are scheduled physically.
    """

    def solve(
        self,
        spec: TargetSpec,
        rows: int,
        cols: int,
        options: JanusOptions,
    ) -> LmOutcome:
        return solve_lm(spec, rows, cols, options)

    def upper_bounds(self, spec: TargetSpec, methods: tuple[str, ...]):
        return best_upper_bound(spec, methods)

    def first_sat(
        self,
        spec: TargetSpec,
        shapes: list[tuple[int, int]],
        options: JanusOptions,
        attempts: list[LmAttempt],
        bounds: Optional[tuple[int, int]] = None,
    ) -> Optional[LatticeAssignment]:
        """Probe ``shapes`` in order; return the first SAT assignment.

        ``bounds`` is the driver's current ``(lb, ub)`` window — a hint
        that lets a parallel prober prefetch the candidate shapes of the
        two possible *next* dichotomic steps; the serial prober ignores
        it.
        """
        for rows, cols in shapes:
            outcome = self.solve(spec, rows, cols, options)
            attempts.append(outcome.attempt)
            if outcome.status == "sat":
                return outcome.assignment
        return None


SERIAL_PROBER = SerialProber()


# ------------------------------------------------------- incremental prober
@dataclass
class ProbeReuseStats:
    """Counters for one :class:`IncrementalProber` lifetime."""

    probes: int = 0  # solve()/decide() calls
    memo_hits: int = 0  # exact (shape, options) repeats replayed
    pruned_shapes: int = 0  # probes answered by shape domination/floors
    family_unsat: int = 0  # probes refuted on a live family solver
    family_sat: int = 0  # status-only probes satisfied on a family solver
    family_fallbacks: int = 0  # family probes that had to re-solve cold
    cold_solves: int = 0  # probes decided by the one-shot path
    core_widened: int = 0  # UNSAT cores that enlarged the refuted shape


@dataclass
class _FamilyState:
    """A live solver deciding one shape family."""

    family: ShapeFamily
    solver: CdclSolver
    selectors_installed: bool = False

    def ensure_selectors(self) -> None:
        if self.selectors_installed:
            return
        # Installed lazily so the bootstrap solve is literally the
        # one-shot solve: same clauses, same trajectory, same model.
        for clause in self.family.selector_clauses:
            if not self.solver.add_clause(clause):
                break  # solver already UNSAT outright; probes stay sound
        self.selectors_installed = True


class _InstanceState:
    """Everything one target function accumulates across probes."""

    def __init__(self) -> None:
        self.memo: dict[tuple[int, int], LmOutcome] = {}
        self.refuted: list[tuple[int, int]] = []  # maximal UNSAT shapes
        self.realized: list[tuple[int, int]] = []  # minimal SAT shapes
        self.families: list[_FamilyState] = []

    def dominated(self, rows: int, cols: int) -> bool:
        return any(rows <= r and cols <= c for r, c in self.refuted)

    def realizable(self, rows: int, cols: int) -> bool:
        """Monotone SAT floor: a recorded solution at a component-wise
        smaller shape extends by inert lanes, so the status is known."""
        return any(rows >= r and cols >= c for r, c in self.realized)

    def record_realized(self, rows: int, cols: int) -> None:
        if self.realizable(rows, cols):
            return
        self.realized = [
            (r, c) for r, c in self.realized if not (r >= rows and c >= cols)
        ]
        self.realized.append((rows, cols))

    def record_refuted(self, rows: int, cols: int) -> None:
        if self.dominated(rows, cols):
            return
        self.refuted = [
            (r, c) for r, c in self.refuted if not (r <= rows and c <= cols)
        ]
        self.refuted.append((rows, cols))

    def covering_family(self, rows: int, cols: int) -> Optional[_FamilyState]:
        for fam in self.families:
            if fam.family.covers(rows, cols):
                return fam
        return None


class IncrementalProber(SerialProber):
    """LM probe backend that keeps one SAT solver alive per instance.

    Drop-in :class:`SerialProber` replacement implementing the
    incremental probe protocol:

    * **Memoized repeats** — an exact ``(shape, options)`` repeat replays
      the recorded outcome (budget-capped "unknown"s only when the budget
      is a deterministic conflict count, mirroring the result cache's
      reproducibility policy).
    * **Domination pruning** — realizability is monotone in each
      dimension, so a shape component-wise below a recorded UNSAT shape
      is refuted without any solver work.
    * **Family probing** — the first solved shape's CNF stays loaded in
      a live :class:`~repro.sat.solver.CdclSolver`; smaller shapes are
      probed on it via :class:`~repro.core.encoder.ShapeFamily` selector
      assumptions, reusing its learned clauses, activities and saved
      phases.  A family UNSAT is final (the restriction is
      equisatisfiable), and its assumption core can refute a strictly
      larger rectangle of shapes than the one probed.
    * **Cold confirmation** — any probe the above cannot *refute* runs
      the exact one-shot path (:func:`solve_lm`'s encode/solve/decode),
      so every SAT assignment the driver ever sees is byte-identical to
      the serial prober's.

    The result contract: the driver's decisions depend on probe statuses
    only through "sat vs not sat" plus the found assignment's size, SAT
    outcomes are always produced by the one-shot path, and refutations
    are semantically sound — so :func:`synthesize` returns the same
    lattice with this prober as with :data:`SERIAL_PROBER`, only cheaper.
    Attempt *metadata* may differ where it reflects how the answer was
    obtained (a domination prune reports ``unsat`` with no side; a family
    refutation may answer ``unsat`` where the budget-capped one-shot
    solve would have reported ``unknown`` — the driver treats both as
    "not realizable").
    """

    def __init__(self, max_instances: int = 8, max_families: int = 4,
                 reuse: bool = True) -> None:
        self.max_instances = max_instances
        self.max_families = max_families
        self.reuse = reuse
        self.stats = ProbeReuseStats()
        self._states: OrderedDict[tuple, _InstanceState] = OrderedDict()

    # ------------------------------------------------------------- plumbing
    @staticmethod
    def _options_key(options: JanusOptions) -> str:
        return json.dumps(asdict(options), sort_keys=True, default=str)

    def _state(self, spec: TargetSpec, options: JanusOptions) -> _InstanceState:
        key = (
            spec.num_inputs,
            spec.tt.values.tobytes(),
            spec.dc.values.tobytes() if spec.dc is not None else None,
            tuple((c.pos, c.neg) for c in spec.isop.cubes),
            self._options_key(options),
        )
        state = self._states.get(key)
        if state is None:
            state = _InstanceState()
            self._states[key] = state
            while len(self._states) > self.max_instances:
                self._states.popitem(last=False)
        else:
            self._states.move_to_end(key)
        return state

    # --------------------------------------------------------------- probes
    def solve(
        self,
        spec: TargetSpec,
        rows: int,
        cols: int,
        options: JanusOptions,
    ) -> LmOutcome:
        start = time.monotonic()
        self.stats.probes += 1
        state = self._state(spec, options)

        memo = state.memo.get((rows, cols))
        if memo is not None and (
            memo.status != "unknown" or options.lm_time_limit is None
        ):
            self.stats.memo_hits += 1
            # Replays cost nothing: report zero work (the serial path
            # would have re-paid the original counters) and flag reuse.
            attempt = replace(
                memo.attempt,
                reused=True,
                conflicts=0,
                propagations=0,
                restarts=0,
                wall_time=time.monotonic() - start,
            )
            return LmOutcome(memo.status, memo.assignment, attempt)

        attempt = LmAttempt(rows=rows, cols=cols, status="structural")
        early = _precheck_lm(spec, rows, cols, options, attempt, start)
        if early is not None:
            state.memo[(rows, cols)] = early
            return early

        if state.dominated(rows, cols):
            self.stats.pruned_shapes += 1
            attempt.status = "unsat"
            attempt.pruned = True
            attempt.reused = True
            attempt.wall_time = time.monotonic() - start
            outcome = LmOutcome("unsat", None, attempt)
            state.memo[(rows, cols)] = outcome
            return outcome

        if self.reuse:
            fam = state.covering_family(rows, cols)
            if fam is not None:
                outcome = self._family_probe(
                    fam, state, spec, rows, cols, options, attempt, start
                )
                if outcome is not None:
                    return outcome
                # Fall through carrying the family probe's cost in
                # ``attempt`` so the fallback's accounting is honest.
                return self._cold_solve(
                    state, spec, rows, cols, options, start, attempt
                )

        return self._cold_solve(state, spec, rows, cols, options, start)

    def decide(
        self,
        spec: TargetSpec,
        rows: int,
        cols: int,
        options: JanusOptions = JanusOptions(),
    ) -> str:
        """Status-only realizability query: "does some ``rows x cols``
        lattice realize the target?"

        Unlike :meth:`solve`, no witness is produced, which unlocks two
        shortcuts :meth:`solve` cannot take: the *upward* monotone floor
        (a solution recorded at a smaller shape extends by inert lanes,
        so any larger shape is ``sat`` without touching a solver) and
        *trusting family SAT answers* (the family solver's model is on
        the envelope variable space and is never decoded, so :meth:`solve`
        must re-solve cold for the byte-identical witness — a pure
        status query has no such obligation).  This is the query the
        realizability-frontier analyses (and ``bench_incremental``) run
        in bulk.
        """
        start = time.monotonic()
        self.stats.probes += 1
        state = self._state(spec, options)
        if state.realizable(rows, cols):
            self.stats.pruned_shapes += 1
            return "sat"
        memo = state.memo.get((rows, cols))
        if memo is not None and (
            memo.status != "unknown" or options.lm_time_limit is None
        ):
            self.stats.memo_hits += 1
            return memo.status
        attempt = LmAttempt(rows=rows, cols=cols, status="structural")
        early = _precheck_lm(spec, rows, cols, options, attempt, start)
        if early is not None:
            state.memo[(rows, cols)] = early
            return early.status
        if state.dominated(rows, cols):
            self.stats.pruned_shapes += 1
            return "unsat"
        if self.reuse:
            fam = state.covering_family(rows, cols)
            if fam is not None:
                outcome = self._family_probe(
                    fam, state, spec, rows, cols, options, attempt, start,
                    accept_sat=True,
                )
                if outcome is not None:
                    return outcome.status
        return self._cold_solve(
            state, spec, rows, cols, options, start, attempt
        ).status

    def _family_probe(
        self,
        fam: _FamilyState,
        state: _InstanceState,
        spec: TargetSpec,
        rows: int,
        cols: int,
        options: JanusOptions,
        attempt: LmAttempt,
        start: float,
        accept_sat: bool = False,
    ) -> Optional[LmOutcome]:
        """Try to decide the shape on the live family solver.

        An UNSAT answer is always used: it is semantically final.  A SAT
        answer is used only for status-only queries (``accept_sat``,
        from :meth:`decide`) — its model lives on the envelope variable
        space and is never decoded, so witness-producing probes return
        ``None`` and re-solve on the one-shot path, whose model is the
        byte-identity reference.  Budget-capped answers always fall back.
        """
        fam.ensure_selectors()
        solver = fam.solver
        before_conflicts = solver.stats.conflicts
        before_props = solver.stats.propagations
        before_restarts = solver.stats.restarts
        result = solver.solve(
            fam.family.assumptions(rows, cols),
            max_conflicts=options.max_conflicts,
            max_time=options.lm_time_limit,
        )
        attempt.conflicts = solver.stats.conflicts - before_conflicts
        attempt.propagations = solver.stats.propagations - before_props
        attempt.restarts = solver.stats.restarts - before_restarts
        attempt.core = solver.stats.core
        if result.is_sat and accept_sat:
            self.stats.family_sat += 1
            state.record_realized(rows, cols)
            attempt.status = "sat"
            attempt.side = fam.family.base.side
            attempt.complexity = fam.family.base.complexity
            attempt.reused = True
            attempt.wall_time = time.monotonic() - start
            # Deliberately NOT memoized: the memo feeds solve(), which
            # must never serve a witness-less "sat".
            return LmOutcome("sat", None, attempt)
        if not result.is_unsat:
            self.stats.family_fallbacks += 1
            return None
        self.stats.family_unsat += 1
        r_ref, c_ref = fam.family.refuted_shape(result.core, rows, cols)
        if (r_ref, c_ref) != (rows, cols):
            self.stats.core_widened += 1
        state.record_refuted(r_ref, c_ref)
        attempt.status = "unsat"
        attempt.side = fam.family.base.side
        attempt.complexity = fam.family.base.complexity
        attempt.reused = True
        attempt.wall_time = time.monotonic() - start
        outcome = LmOutcome("unsat", None, attempt)
        state.memo[(rows, cols)] = outcome
        return outcome

    def _cold_solve(
        self,
        state: _InstanceState,
        spec: TargetSpec,
        rows: int,
        cols: int,
        options: JanusOptions,
        start: float,
        attempt: Optional[LmAttempt] = None,
    ) -> LmOutcome:
        """The one-shot path, with the solver retained as a new family.

        Loading the chosen CNF into a fresh retained solver and solving
        it is *exactly* what :func:`repro.sat.solver.solve_cnf` does, so
        the outcome (status, model, statistics) is identical to the
        serial prober's — the retained solver is a free byproduct.

        ``attempt`` carries cost already spent on this probe (a family
        probe that could not refute it); counters accumulate on top.
        """
        if attempt is None:
            attempt = LmAttempt(rows=rows, cols=cols, status="structural")
        chosen, built = _choose_encoding(spec, rows, cols, options)
        if chosen is None:
            if any(e.infeasible for e in built):
                attempt.status = "unsat"
                attempt.wall_time = time.monotonic() - start
                outcome = LmOutcome("unsat", None, attempt)
            else:
                attempt.status = "skipped"
                attempt.wall_time = time.monotonic() - start
                outcome = LmOutcome("unknown", None, attempt)
            state.memo[(rows, cols)] = outcome
            return outcome

        self.stats.cold_solves += 1
        attempt.side = chosen.side
        attempt.complexity = chosen.complexity
        family = (
            shape_family(chosen)
            if self.reuse and state.covering_family(rows, cols) is None
            else None
        )
        if family is not None:
            solver = CdclSolver(
                num_vars=chosen.cnf.num_vars, config=options.solver
            )
            result: Optional[SolveResult] = None
            for clause in chosen.cnf.clauses:
                if not solver.add_clause(clause):
                    result = SolveResult("unsat", stats=solver.stats)
                    break
            if result is None:
                result = solver.solve(
                    max_conflicts=options.max_conflicts,
                    max_time=options.lm_time_limit,
                )
            state.families.append(_FamilyState(family, solver))
            if len(state.families) > self.max_families:
                state.families.pop(0)
        else:
            result = solve_cnf(
                chosen.cnf,
                max_conflicts=options.max_conflicts,
                max_time=options.lm_time_limit,
                config=options.solver,
            )
        attempt.conflicts += result.stats.conflicts
        attempt.propagations += result.stats.propagations
        attempt.restarts += result.stats.restarts
        attempt.core = result.stats.core
        attempt.status = result.status
        attempt.wall_time = time.monotonic() - start
        if result.is_unsat:
            state.record_refuted(rows, cols)
        if not result.is_sat:
            outcome = LmOutcome(result.status, None, attempt)
            state.memo[(rows, cols)] = outcome
            return outcome
        assignment = _decode_sat(spec, chosen, result, options)
        state.record_realized(rows, cols)
        outcome = LmOutcome("sat", assignment, attempt)
        state.memo[(rows, cols)] = outcome
        return outcome


# ------------------------------------------------------------ search pieces
def candidate_shapes(area: int, lower_bound: int = 1) -> list[tuple[int, int]]:
    """Maximal lattice shapes of area at most ``area``.

    Realizability is monotone in each dimension separately (a constant-0
    column or constant-1 bottom row never changes the realized function),
    so probing only shapes maximal under component-wise domination decides
    "is there a solution with at most ``area`` switches".  Shapes whose
    area falls below the lower bound cannot host a solution and are
    dropped.  Balanced shapes come first: they have the richest lattice
    functions (Table I) and are the most likely SAT answers.
    """
    raw = {}
    for m in range(1, area + 1):
        n = area // m
        raw[(m, n)] = m * n
    shapes = [
        (m, n)
        for (m, n) in raw
        if raw[(m, n)] >= lower_bound
        and not any(
            (mm >= m and nn >= n and (mm, nn) != (m, n)) for (mm, nn) in raw
        )
    ]
    return sorted(shapes, key=lambda s: (-(s[0] * s[1]), abs(s[0] - s[1])))


def fit_columns(
    spec: TargetSpec,
    rows: int,
    max_cols: int,
    options: JanusOptions = JanusOptions(),
    attempts: Optional[list[LmAttempt]] = None,
    prober: Optional[SerialProber] = None,
) -> Optional[LatticeAssignment]:
    """Smallest-width realization on a fixed number of rows.

    Binary search over the column count (realizability is monotone in the
    width); returns ``None`` when even ``rows x max_cols`` is not solved
    within budgets.  Used by the DS bound, JANUS-MF and the [11]-style
    baseline.
    """
    prober = prober or SERIAL_PROBER
    lo, hi = 1, max_cols
    best: Optional[LatticeAssignment] = None
    # First make sure the widest lattice works at all.
    outcome = prober.solve(spec, rows, max_cols, options)
    if attempts is not None:
        attempts.append(outcome.attempt)
    if outcome.status != "sat":
        return None
    best = outcome.assignment
    hi = max_cols - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        outcome = prober.solve(spec, rows, mid, options)
        if attempts is not None:
            attempts.append(outcome.attempt)
        if outcome.status == "sat":
            best = outcome.assignment
            hi = mid - 1
        else:
            lo = mid + 1
    return best


def _trivial_result(spec: TargetSpec) -> Optional[SynthesisResult]:
    """Constants and single products skip the search entirely."""
    if spec.tt.is_zero():
        la = LatticeAssignment(1, 1, [CONST0], spec.num_inputs, spec.name_list())
        return SynthesisResult(
            spec, la, 1, 1, {"trivial": (1, 1)}, initial_lower_bound=1
        )
    if spec.tt.is_one():
        la = LatticeAssignment(1, 1, [CONST1], spec.num_inputs, spec.name_list())
        return SynthesisResult(
            spec, la, 1, 1, {"trivial": (1, 1)}, initial_lower_bound=1
        )
    if spec.num_products == 1:
        cube = spec.isop.cubes[0]
        if cube.is_tautology():
            # Possible with don't-cares: constant 1 lies in the interval.
            la = LatticeAssignment(
                1, 1, [CONST1], spec.num_inputs, spec.name_list()
            )
            return SynthesisResult(
                spec, la, 1, 1, {"trivial": (1, 1)}, initial_lower_bound=1
            )
        entries = [Entry.lit(v, pos) for v, pos in cube.literals()]
        la = LatticeAssignment(
            len(entries), 1, entries, spec.num_inputs, spec.name_list()
        )
        if not spec.accepts(la.realized_truthtable()):
            raise SynthesisError("single-product column failed verification")
        k = len(entries)
        return SynthesisResult(
            spec, la, k, k, {"trivial": (k, 1)}, initial_lower_bound=k
        )
    return None


# ------------------------------------------------------------------- driver
def synthesize(
    target: Union[TargetSpec, Sop, TruthTable, str],
    name: str = "f",
    options: JanusOptions = JanusOptions(),
    prober: Optional[SerialProber] = None,
) -> SynthesisResult:
    """Run JANUS on a target function and return the best found lattice.

    ``prober`` selects the LM probe backend; the default solves serially
    in-process.  Pass a :class:`repro.engine.ParallelEngine` to race the
    candidate shapes of each dichotomic step across worker processes
    and/or answer repeated probes from a persistent cache — the search
    decisions (and therefore the result) are identical either way.
    """
    start = time.monotonic()
    prober = prober or SERIAL_PROBER
    spec = make_spec(target, name=name, exact=options.exact_minimization)
    trivial = _trivial_result(spec)
    if trivial is not None:
        trivial.wall_time = time.monotonic() - start
        return trivial

    lb = structural_lower_bound(spec)
    initial_lb = lb

    methods = options.ub_methods
    if options.ds_depth <= 0:
        methods = tuple(m for m in methods if m != "ds")
    basic_methods = tuple(m for m in methods if m != "ds")
    best_bound, all_bounds = prober.upper_bounds(spec, basic_methods)
    if "ds" in methods:
        from repro.core.decompose import ub_ds  # lazy: DS calls back into JANUS

        try:
            ds_bound = ub_ds(spec, options, prober=prober)
            all_bounds["ds"] = ds_bound
            if ds_bound.size < best_bound.size:
                best_bound = ds_bound
        except SynthesisError:
            pass

    upper_bounds = {k: (v.rows, v.cols) for k, v in all_bounds.items()}
    best_assignment = best_bound.assignment
    ub = best_bound.size
    initial_ub = ub
    attempts: list[LmAttempt] = []

    while lb < ub:
        mp = (lb + ub) // 2
        found = prober.first_sat(
            spec, candidate_shapes(mp, lb), options, attempts, bounds=(lb, ub)
        )
        if found is not None:
            best_assignment = found
            ub = found.size
        else:
            lb = mp + 1

    result = SynthesisResult(
        spec=spec,
        assignment=best_assignment,
        lower_bound=lb,
        initial_upper_bound=initial_ub,
        upper_bounds=upper_bounds,
        attempts=attempts,
        initial_lower_bound=initial_lb,
    )
    result.wall_time = time.monotonic() - start
    return result
