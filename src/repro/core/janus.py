"""JANUS: dichotomic lattice synthesis driven by SAT (paper, Section III).

:func:`synthesize` implements the top-level algorithm:

1. compute the structural lower bound ``lb`` and the best initial upper
   bound ``ub`` over the DP/PS/DPS/IPS/IDPS/DS constructions (all bounds
   come with verified assignments);
2. while ``lb < ub``: probe the middle area ``mp``, generate the maximal
   candidate shapes of area at most ``mp``, and solve the LM problem for
   each candidate (choosing the cheaper of the primal/dual encodings); a
   SAT answer improves ``ub`` (and the stored assignment), otherwise
   ``lb`` becomes ``mp + 1``;
3. return the best verified assignment.

Solver timeouts are treated as "not realizable", exactly as the paper's
1200-second SAT limit is — which is one of the reasons JANUS is an
*approximate* algorithm.  Budgets here are expressed in conflicts (for
determinism) with an optional wall-clock cap.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.errors import SynthesisError
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable
from repro.core.bounds import best_upper_bound
from repro.core.encoder import EncodeOptions, best_encoding
from repro.core.structural import structural_check, structural_lower_bound
from repro.core.target import TargetSpec
from repro.lattice.assignment import CONST0, CONST1, Entry, LatticeAssignment
from repro.lattice.paths import left_right_paths8, top_bottom_paths
from repro.sat.solver import solve_cnf

__all__ = [
    "JanusOptions",
    "LmAttempt",
    "LmOutcome",
    "SerialProber",
    "SERIAL_PROBER",
    "SynthesisResult",
    "solve_lm",
    "synthesize",
    "candidate_shapes",
    "fit_columns",
    "make_spec",
]


@dataclass(frozen=True)
class JanusOptions:
    """Configuration for a JANUS run (defaults follow the paper)."""

    max_conflicts: int = 60_000  # per LM SAT call; determinism-friendly
    lm_time_limit: Optional[float] = None  # optional per-call wall clock
    encode: EncodeOptions = field(default_factory=EncodeOptions)
    ub_methods: tuple[str, ...] = ("dp", "ps", "dps", "ips", "idps", "ds")
    sides: tuple[str, ...] = ("primal", "dual")
    verify: bool = True
    trim_solutions: bool = True  # drop inert edge lanes from SAT decodes
    max_lattice_products: int = 20_000  # skip candidate shapes richer than this
    ds_depth: int = 1  # recursion depth available to the DS bound
    exact_minimization: bool = True

    def for_subproblems(self) -> "JanusOptions":
        """Options for recursive JANUS calls inside DS / MF."""
        methods = tuple(m for m in self.ub_methods if m != "ds")
        return replace(
            self, ub_methods=methods, ds_depth=max(0, self.ds_depth - 1)
        )


@dataclass
class LmAttempt:
    """Record of one LM probe during the search."""

    rows: int
    cols: int
    status: str  # "sat" | "unsat" | "unknown" | "structural" | "skipped"
    side: Optional[str] = None
    complexity: int = 0
    conflicts: int = 0
    wall_time: float = 0.0
    cached: bool = False  # answered from a persistent result cache


@dataclass
class LmOutcome:
    status: str
    assignment: Optional[LatticeAssignment]
    attempt: LmAttempt


@dataclass
class SynthesisResult:
    """Final outcome of a JANUS run."""

    spec: TargetSpec
    assignment: LatticeAssignment
    lower_bound: int  # final (possibly search-refined) lower bound
    initial_upper_bound: int
    upper_bounds: dict[str, tuple[int, int]]
    attempts: list[LmAttempt] = field(default_factory=list)
    wall_time: float = 0.0
    method: str = "janus"
    initial_lower_bound: int = 0  # the paper's Table II "lb" column

    @property
    def rows(self) -> int:
        return self.assignment.rows

    @property
    def cols(self) -> int:
        return self.assignment.cols

    @property
    def size(self) -> int:
        """Number of switches — the LS objective."""
        return self.assignment.size

    @property
    def is_provably_minimum(self) -> bool:
        """True when the search closed the gap to the structural bound."""
        return self.size == self.lower_bound

    @property
    def shape(self) -> str:
        return f"{self.rows}x{self.cols}"

    def __repr__(self) -> str:
        return (
            f"SynthesisResult({self.spec.name!r}, {self.shape}, "
            f"size={self.size}, lb={self.lower_bound})"
        )


def make_spec(
    target: Union[TargetSpec, Sop, TruthTable, str],
    name: str = "f",
    exact: bool = True,
) -> TargetSpec:
    """Coerce any accepted target form into a :class:`TargetSpec`."""
    if isinstance(target, TargetSpec):
        return target
    if isinstance(target, Sop):
        return TargetSpec.from_sop(target, name=name, exact=exact)
    if isinstance(target, TruthTable):
        return TargetSpec.from_truthtable(target, name=name, exact=exact)
    if isinstance(target, str):
        return TargetSpec.from_string(target, name=name, exact=exact)
    raise SynthesisError(f"cannot interpret target of type {type(target)!r}")


# ----------------------------------------------------------------- LM probe
def solve_lm(
    spec: TargetSpec,
    rows: int,
    cols: int,
    options: JanusOptions = JanusOptions(),
) -> LmOutcome:
    """Decide one LM instance: structural check, encode both sides, solve
    the cheaper one, decode and verify."""
    start = time.monotonic()
    attempt = LmAttempt(rows=rows, cols=cols, status="structural")
    if not structural_check(spec, rows, cols):
        attempt.wall_time = time.monotonic() - start
        return LmOutcome("unsat", None, attempt)

    if (
        len(top_bottom_paths(rows, cols)) > options.max_lattice_products
        and len(left_right_paths8(rows, cols)) > options.max_lattice_products
    ):
        attempt.status = "skipped"
        attempt.wall_time = time.monotonic() - start
        return LmOutcome("unknown", None, attempt)

    enc_options = replace(
        options.encode, max_products=options.max_lattice_products
    )
    chosen, built = best_encoding(
        spec, rows, cols, enc_options, sides=options.sides
    )
    if chosen is None:
        if any(e.infeasible for e in built):
            attempt.status = "unsat"
            attempt.wall_time = time.monotonic() - start
            return LmOutcome("unsat", None, attempt)
        attempt.status = "skipped"
        attempt.wall_time = time.monotonic() - start
        return LmOutcome("unknown", None, attempt)

    attempt.side = chosen.side
    attempt.complexity = chosen.complexity
    result = solve_cnf(
        chosen.cnf,
        max_conflicts=options.max_conflicts,
        max_time=options.lm_time_limit,
    )
    attempt.conflicts = result.stats.conflicts
    attempt.status = result.status
    attempt.wall_time = time.monotonic() - start
    if not result.is_sat:
        return LmOutcome(result.status, None, attempt)

    assignment = chosen.decode(result)
    if options.verify and not spec.accepts(assignment.realized_truthtable()):
        raise SynthesisError(
            f"decoded {rows}x{cols} assignment ({chosen.side} side) does not "
            f"realize {spec.name}: encoder bug"
        )
    if options.trim_solutions:
        assignment = assignment.trimmed()
    return LmOutcome("sat", assignment, attempt)


# ----------------------------------------------------------------- probers
class SerialProber:
    """Default LM probe strategy: solve instances one at a time, in order.

    The JANUS driver talks to its SAT backend exclusively through this
    three-method interface, which is what lets
    :class:`repro.engine.ParallelEngine` substitute a process-pool/cached
    implementation without touching the search logic.  Any replacement must
    preserve the *serial semantics*: ``first_sat`` returns the first shape
    (in the given order) that answers SAT, and appends one attempt per
    probed shape, stopping at the winner — so results stay byte-identical
    to this prober no matter how the probes are scheduled physically.
    """

    def solve(
        self,
        spec: TargetSpec,
        rows: int,
        cols: int,
        options: JanusOptions,
    ) -> LmOutcome:
        return solve_lm(spec, rows, cols, options)

    def upper_bounds(self, spec: TargetSpec, methods: tuple[str, ...]):
        return best_upper_bound(spec, methods)

    def first_sat(
        self,
        spec: TargetSpec,
        shapes: list[tuple[int, int]],
        options: JanusOptions,
        attempts: list[LmAttempt],
        bounds: Optional[tuple[int, int]] = None,
    ) -> Optional[LatticeAssignment]:
        """Probe ``shapes`` in order; return the first SAT assignment.

        ``bounds`` is the driver's current ``(lb, ub)`` window — a hint
        that lets a parallel prober prefetch the candidate shapes of the
        two possible *next* dichotomic steps; the serial prober ignores
        it.
        """
        for rows, cols in shapes:
            outcome = self.solve(spec, rows, cols, options)
            attempts.append(outcome.attempt)
            if outcome.status == "sat":
                return outcome.assignment
        return None


SERIAL_PROBER = SerialProber()


# ------------------------------------------------------------ search pieces
def candidate_shapes(area: int, lower_bound: int = 1) -> list[tuple[int, int]]:
    """Maximal lattice shapes of area at most ``area``.

    Realizability is monotone in each dimension separately (a constant-0
    column or constant-1 bottom row never changes the realized function),
    so probing only shapes maximal under component-wise domination decides
    "is there a solution with at most ``area`` switches".  Shapes whose
    area falls below the lower bound cannot host a solution and are
    dropped.  Balanced shapes come first: they have the richest lattice
    functions (Table I) and are the most likely SAT answers.
    """
    raw = {}
    for m in range(1, area + 1):
        n = area // m
        raw[(m, n)] = m * n
    shapes = [
        (m, n)
        for (m, n) in raw
        if raw[(m, n)] >= lower_bound
        and not any(
            (mm >= m and nn >= n and (mm, nn) != (m, n)) for (mm, nn) in raw
        )
    ]
    return sorted(shapes, key=lambda s: (-(s[0] * s[1]), abs(s[0] - s[1])))


def fit_columns(
    spec: TargetSpec,
    rows: int,
    max_cols: int,
    options: JanusOptions = JanusOptions(),
    attempts: Optional[list[LmAttempt]] = None,
    prober: Optional[SerialProber] = None,
) -> Optional[LatticeAssignment]:
    """Smallest-width realization on a fixed number of rows.

    Binary search over the column count (realizability is monotone in the
    width); returns ``None`` when even ``rows x max_cols`` is not solved
    within budgets.  Used by the DS bound, JANUS-MF and the [11]-style
    baseline.
    """
    prober = prober or SERIAL_PROBER
    lo, hi = 1, max_cols
    best: Optional[LatticeAssignment] = None
    # First make sure the widest lattice works at all.
    outcome = prober.solve(spec, rows, max_cols, options)
    if attempts is not None:
        attempts.append(outcome.attempt)
    if outcome.status != "sat":
        return None
    best = outcome.assignment
    hi = max_cols - 1
    while lo <= hi:
        mid = (lo + hi) // 2
        outcome = prober.solve(spec, rows, mid, options)
        if attempts is not None:
            attempts.append(outcome.attempt)
        if outcome.status == "sat":
            best = outcome.assignment
            hi = mid - 1
        else:
            lo = mid + 1
    return best


def _trivial_result(spec: TargetSpec) -> Optional[SynthesisResult]:
    """Constants and single products skip the search entirely."""
    if spec.tt.is_zero():
        la = LatticeAssignment(1, 1, [CONST0], spec.num_inputs, spec.name_list())
        return SynthesisResult(
            spec, la, 1, 1, {"trivial": (1, 1)}, initial_lower_bound=1
        )
    if spec.tt.is_one():
        la = LatticeAssignment(1, 1, [CONST1], spec.num_inputs, spec.name_list())
        return SynthesisResult(
            spec, la, 1, 1, {"trivial": (1, 1)}, initial_lower_bound=1
        )
    if spec.num_products == 1:
        cube = spec.isop.cubes[0]
        if cube.is_tautology():
            # Possible with don't-cares: constant 1 lies in the interval.
            la = LatticeAssignment(
                1, 1, [CONST1], spec.num_inputs, spec.name_list()
            )
            return SynthesisResult(
                spec, la, 1, 1, {"trivial": (1, 1)}, initial_lower_bound=1
            )
        entries = [Entry.lit(v, pos) for v, pos in cube.literals()]
        la = LatticeAssignment(
            len(entries), 1, entries, spec.num_inputs, spec.name_list()
        )
        if not spec.accepts(la.realized_truthtable()):
            raise SynthesisError("single-product column failed verification")
        k = len(entries)
        return SynthesisResult(
            spec, la, k, k, {"trivial": (k, 1)}, initial_lower_bound=k
        )
    return None


# ------------------------------------------------------------------- driver
def synthesize(
    target: Union[TargetSpec, Sop, TruthTable, str],
    name: str = "f",
    options: JanusOptions = JanusOptions(),
    prober: Optional[SerialProber] = None,
) -> SynthesisResult:
    """Run JANUS on a target function and return the best found lattice.

    ``prober`` selects the LM probe backend; the default solves serially
    in-process.  Pass a :class:`repro.engine.ParallelEngine` to race the
    candidate shapes of each dichotomic step across worker processes
    and/or answer repeated probes from a persistent cache — the search
    decisions (and therefore the result) are identical either way.
    """
    start = time.monotonic()
    prober = prober or SERIAL_PROBER
    spec = make_spec(target, name=name, exact=options.exact_minimization)
    trivial = _trivial_result(spec)
    if trivial is not None:
        trivial.wall_time = time.monotonic() - start
        return trivial

    lb = structural_lower_bound(spec)
    initial_lb = lb

    methods = options.ub_methods
    if options.ds_depth <= 0:
        methods = tuple(m for m in methods if m != "ds")
    basic_methods = tuple(m for m in methods if m != "ds")
    best_bound, all_bounds = prober.upper_bounds(spec, basic_methods)
    if "ds" in methods:
        from repro.core.decompose import ub_ds  # lazy: DS calls back into JANUS

        try:
            ds_bound = ub_ds(spec, options, prober=prober)
            all_bounds["ds"] = ds_bound
            if ds_bound.size < best_bound.size:
                best_bound = ds_bound
        except SynthesisError:
            pass

    upper_bounds = {k: (v.rows, v.cols) for k, v in all_bounds.items()}
    best_assignment = best_bound.assignment
    ub = best_bound.size
    initial_ub = ub
    attempts: list[LmAttempt] = []

    while lb < ub:
        mp = (lb + ub) // 2
        found = prober.first_sat(
            spec, candidate_shapes(mp, lb), options, attempts, bounds=(lb, ub)
        )
        if found is not None:
            best_assignment = found
            ub = found.size
        else:
            lb = mp + 1

    result = SynthesisResult(
        spec=spec,
        assignment=best_assignment,
        lower_bound=lb,
        initial_upper_bound=initial_ub,
        upper_bounds=upper_bounds,
        attempts=attempts,
        initial_lower_bound=initial_lb,
    )
    result.wall_time = time.monotonic() - start
    return result
