"""Autosymmetric-function decomposition (the method of [10]).

A function ``f`` over n variables is *k-autosymmetric* when its linear
space

    L_f = { alpha : f(x ^ alpha) = f(x) for all x }

has dimension k > 0.  Then f factors through the quotient of the cube by
L_f: there exist n-k GF(2) linear functionals ``c_1..c_{n-k}`` (a basis
of the orthogonal complement of L_f) and a *restriction function* ``f_k``
over n-k variables with

    f(x) = f_k(c_1 . x, ..., c_{n-k} . x).

Bernasconi et al. exploit this for lattice synthesis: synthesize the
(smaller) restriction on a lattice and feed its inputs through EXOR gates
computing the functionals — extra logic outside the lattice, which the
JANUS paper's related-work section notes "may not be desirable", but
often a large area win.  This module reproduces that flow:

* :func:`linear_space` / :func:`autosymmetry_degree` — detect L_f,
* :func:`reduce_autosymmetric` — the reduction (functionals + f_k),
* :func:`synthesize_autosymmetric` — run JANUS on the restriction and
  package the full decomposition, with an end-to-end verification that
  the composition reproduces ``f`` on every input vector.

A functional is *trivial* when it is a single variable (no EXOR gate
needed); :attr:`AutosymmetricResult.num_exor_gates` counts only the
non-trivial ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

import numpy as np

from repro.errors import SynthesisError
from repro.boolf.gf2 import dot, orthogonal_complement, row_reduce
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable
from repro.core.janus import JanusOptions, SynthesisResult, make_spec, synthesize
from repro.core.target import TargetSpec

__all__ = [
    "AutosymmetricResult",
    "autosymmetry_degree",
    "linear_space",
    "reduce_autosymmetric",
    "synthesize_autosymmetric",
]


def linear_space(tt: TruthTable) -> list[int]:
    """Reduced basis of ``L_f`` (bitmask vectors; empty list for k = 0).

    Brute-forces the defining condition with one vectorized comparison
    per candidate; fine for the at-most-16-input functions handled here.
    Constant functions have ``L_f`` equal to the whole cube.
    """
    values = tt.values
    n = tt.num_vars
    idx = np.arange(1 << n, dtype=np.int64)
    members = [
        alpha
        for alpha in range(1, 1 << n)
        if bool((values[idx ^ alpha] == values).all())
    ]
    return row_reduce(members)


def autosymmetry_degree(tt: TruthTable) -> int:
    """The k in "k-autosymmetric" (0 for functions with trivial L_f)."""
    return len(linear_space(tt))


@dataclass
class AutosymmetricReduction:
    """Outcome of :func:`reduce_autosymmetric`."""

    degree: int  # k
    basis: list[int]  # reduced basis of L_f
    functionals: list[int]  # n-k masks; functional i is dot(mask_i, x)
    restriction: TruthTable  # f_k over n-k variables

    def project(self, minterm: int) -> int:
        """Map an input vector to the restriction's input vector."""
        out = 0
        for i, mask in enumerate(self.functionals):
            out |= dot(mask, minterm) << i
        return out

    def compose(self, minterm: int) -> bool:
        """Evaluate ``f_k(c(x))`` — must equal ``f(x)``."""
        return self.restriction.evaluate(self.project(minterm))


def reduce_autosymmetric(tt: TruthTable) -> AutosymmetricReduction:
    """Compute the autosymmetry reduction of ``tt``.

    For k = 0 the reduction is trivial (functionals are the identity and
    the restriction is ``tt`` itself).
    """
    basis = linear_space(tt)
    k = len(basis)
    n = tt.num_vars
    functionals = orthogonal_complement(basis, n) if k else [
        1 << i for i in range(n)
    ]
    if len(functionals) != n - k:
        raise SynthesisError(
            f"orthogonal complement has dimension {len(functionals)}, "
            f"expected {n - k}"
        )
    # f_k(y) = f(x) for any x with c(x) = y.  Build a representative per y
    # by scanning the cube once; every y is hit because c is surjective.
    values = np.zeros(1 << (n - k), dtype=bool)
    seen = np.zeros(1 << (n - k), dtype=bool)
    reduction = AutosymmetricReduction(k, basis, functionals, tt)
    for x in range(1 << n):
        y = reduction.project(x)
        if not seen[y]:
            seen[y] = True
            values[y] = tt.evaluate(x)
    if not bool(seen.all()):
        raise SynthesisError("projection missed a restriction input")
    reduction.restriction = TruthTable(values, n - k)
    return reduction


@dataclass
class AutosymmetricResult:
    """A lattice for the restriction plus the EXOR input network."""

    reduction: AutosymmetricReduction
    synthesis: SynthesisResult
    wall_time: float = 0.0

    @property
    def lattice_size(self) -> int:
        return self.synthesis.size

    @property
    def num_exor_gates(self) -> int:
        """Functionals needing a real EXOR gate (fan-in >= 2)."""
        return sum(
            1 for mask in self.reduction.functionals if mask.bit_count() >= 2
        )

    def evaluate(self, minterm: int) -> bool:
        """Full composition: EXOR network feeding the lattice."""
        return self.synthesis.assignment.evaluate(
            self.reduction.project(minterm)
        )

    def realized_truthtable(self) -> TruthTable:
        # The original universe size, recovered from the reduction.
        n = len(self.reduction.functionals) + self.reduction.degree
        values = np.zeros(1 << n, dtype=bool)
        for m in range(1 << n):
            values[m] = self.evaluate(m)
        return TruthTable(values, n)


def synthesize_autosymmetric(
    target: Union[TargetSpec, Sop, TruthTable, str],
    options: JanusOptions = JanusOptions(),
    name: str = "f",
) -> AutosymmetricResult:
    """The [10]-style flow: reduce, synthesize the restriction, verify."""
    import time

    start = time.monotonic()
    spec = make_spec(target, name=name)
    reduction = reduce_autosymmetric(spec.tt)
    restriction_spec = TargetSpec.from_truthtable(
        reduction.restriction, name=f"{name}_k", exact=options.exact_minimization
    )
    synthesis = synthesize(restriction_spec, options)
    result = AutosymmetricResult(reduction, synthesis)
    result.wall_time = time.monotonic() - start
    if options.verify and result.realized_truthtable() != spec.tt:
        raise SynthesisError(
            "autosymmetric composition does not reproduce the target"
        )
    return result
