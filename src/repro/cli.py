"""Command-line interface: ``janus`` / ``python -m repro``.

Subcommands::

    janus synth "ab + a'b'c"          synthesize one function
    janus synth --pla file.pla -o 0   synthesize a PLA output
    janus synth "..." --jobs 4 --cache ~/.janus-cache   parallel + cached
    janus synth "..." --backend exact --json   pick a backend; wire output
    janus synth "..." --solver-preset agile --solver-opt restart_base=64
    janus table1 [--max 8]            regenerate Table I
    janus fig4                        regenerate the Fig. 4 bound example
    janus table2 [--profile fast] [--algorithms janus,exact,...]
    janus table2 --jobs 4 --cache DIR shard instances across workers
    janus table2 --json               emit the BatchResponse wire form
    janus table3 [--names squar5,misex1,bw]
    janus cache stats DIR             entries/bytes/temp files in a cache
    janus cache verify DIR            replay stored assignments vs specs
    janus cache gc DIR --max-age-days 30 --max-size-mb 512   bounded GC
    janus serve --port 8080 --jobs 2  serve the JSON wire schema over HTTP
    janus gen --family mixed --level 1   generate a seeded workload (JSON)
    janus synth --request work.json --json   run a generated batch
    janus lint [--strict] [--json]    run the static-analysis suite

The CLI is a thin frontend over the stable :mod:`repro.api` facade —
every synthesis goes through a :class:`repro.api.Session`, and ``--json``
emits exactly the ``SynthesisResponse``/``BatchResponse`` wire schema
``janus serve`` serves over HTTP.

``--jobs 0`` means "one worker per *available* CPU" (cgroup/affinity
aware).  ``--cache DIR`` persists every decisive LM probe result *and*
whole synthesis results keyed by canonical function signatures, so a
repeated run skips not just SAT calls but the bounds computation and the
dichotomic search too (see :mod:`repro.engine`).  ``--portfolio`` races
the eager paper encoding against the lazy CEGAR backend per probe.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.api import RequestOptions, Session
from repro.api import synthesize as api_synthesize
from repro.boolf.pla import read_pla
from repro.core.target import TargetSpec

__all__ = ["main", "build_parser"]


def _add_solver_args(parser: argparse.ArgumentParser) -> None:
    """The shared CDCL tuning flags (``synth`` / ``table2`` / ``serve``)."""
    parser.add_argument(
        "--solver-preset",
        default=None,
        metavar="NAME",
        help="named SolverConfig preset: default, agile, stable, heavy",
    )
    parser.add_argument(
        "--solver-opt",
        action="append",
        default=None,
        metavar="KEY=VALUE",
        help="override one SolverConfig field on top of the preset "
        "(repeatable), e.g. --solver-opt restart_base=256 "
        "--solver-opt var_decay=0.9",
    )


def _solver_config_from_args(args: argparse.Namespace):
    """Build the requested :class:`SolverConfig`, or ``None`` when the
    tuning flags were not used (so defaults stay byte-identical)."""
    preset = getattr(args, "solver_preset", None)
    raw_opts = getattr(args, "solver_opt", None) or []
    if preset is None and not raw_opts:
        return None
    import typing
    from dataclasses import replace

    from repro.errors import ValidationError
    from repro.sat.solver import SolverConfig

    config = SolverConfig.preset(preset) if preset else SolverConfig()
    if not raw_opts:
        return config
    hints = typing.get_type_hints(SolverConfig)
    overrides = {}
    for item in raw_opts:
        key, sep, raw = item.partition("=")
        if not sep or not key:
            raise ValidationError(
                f"--solver-opt expects KEY=VALUE, got {item!r}"
            )
        hint = hints.get(key)
        if hint is None:
            known = ", ".join(sorted(hints))
            raise ValidationError(
                f"unknown solver option {key!r}; known options: {known}"
            )
        if typing.get_origin(hint) is typing.Union:  # Optional[...] budgets
            if raw.lower() in ("none", "null"):
                overrides[key] = None
                continue
            hint = next(
                a for a in typing.get_args(hint) if a is not type(None)
            )
        try:
            overrides[key] = hint(raw) if hint is not str else raw
        except ValueError:
            raise ValidationError(
                f"--solver-opt {key} expects {hint.__name__}, got {raw!r}"
            )
    return replace(config, **overrides)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="janus",
        description="SAT-based approximate logic synthesis on switching "
        "lattices (reproduction of Aksoy & Altun, DATE 2019)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_synth = sub.add_parser("synth", help="synthesize a single function")
    p_synth.add_argument("expression", nargs="?", help="SOP, e.g. \"ab + a'c\"")
    p_synth.add_argument("--pla", help="PLA file to read the target from")
    p_synth.add_argument(
        "--request",
        metavar="FILE",
        default=None,
        help="read a synthesis_request or batch_request JSON document "
        "(e.g. from `janus gen`); '-' reads stdin",
    )
    p_synth.add_argument(
        "--dispatch",
        metavar="FILE",
        default=None,
        help="learned portfolio dispatch table (JSON; created if missing, "
        "updated on exit; consulted whenever a probe races under the "
        "portfolio backend)",
    )
    p_synth.add_argument(
        "-o", "--output", type=int, default=0, help="PLA output index"
    )
    p_synth.add_argument(
        "--max-conflicts", type=int, default=60_000, help="SAT budget per LM"
    )
    p_synth.add_argument(
        "--time-limit", type=float, default=None, help="wall seconds per LM"
    )
    p_synth.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes racing candidate shapes (0 = all CPUs)",
    )
    p_synth.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="persistent result cache directory (probe + suite layers)",
    )
    p_synth.add_argument(
        "--portfolio",
        action="store_true",
        help="race the eager and lazy (CEGAR) backends per probe",
    )
    p_synth.add_argument(
        "--backend",
        default=None,
        help="synthesis backend by registry name "
        "(janus, cegar, portfolio, exact, approx, heuristic, pcircuit)",
    )
    p_synth.add_argument(
        "--json",
        action="store_true",
        help="emit the SynthesisResponse JSON wire form instead of text",
    )
    p_synth.add_argument(
        "--npn-dedup",
        action="store_true",
        help="share whole-result cache entries across NP-equivalent "
        "functions (input permutation/negation classes; needs --cache)",
    )
    _add_solver_args(p_synth)

    p_t1 = sub.add_parser("table1", help="regenerate Table I (product counts)")
    p_t1.add_argument("--max", type=int, default=8, help="largest m and n")
    p_t1.add_argument(
        "--no-check", action="store_true", help="skip comparison with the paper"
    )

    sub.add_parser("fig4", help="regenerate the Fig. 4 bound comparison")

    p_t2 = sub.add_parser("table2", help="run the Table II comparison")
    p_t2.add_argument(
        "--profile", default=None, choices=("fast", "medium", "full")
    )
    p_t2.add_argument(
        "--algorithms",
        default="janus",
        help="comma list: janus,exact,approx,heuristic,pcircuit",
    )
    p_t2.add_argument("--names", default=None, help="comma list of instances")
    p_t2.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="shard instances across this many worker processes (0 = all CPUs)",
    )
    p_t2.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="persistent result cache shared by all workers (probe + suite)",
    )
    p_t2.add_argument(
        "--portfolio",
        action="store_true",
        help="race the eager and lazy (CEGAR) backends inside every probe",
    )
    p_t2.add_argument(
        "--json",
        action="store_true",
        help="emit the BatchResponse JSON wire form instead of the table",
    )
    p_t2.add_argument(
        "--npn-dedup",
        action="store_true",
        help="share whole-result cache entries across NP-equivalent "
        "instances (needs --cache)",
    )
    _add_solver_args(p_t2)

    p_t3 = sub.add_parser("table3", help="run the Table III comparison")
    p_t3.add_argument("--names", default="squar5,misex1,bw")

    p_cache = sub.add_parser(
        "cache", help="inspect, verify or clean a persistent result cache"
    )
    p_cache.add_argument("action", choices=("stats", "clear", "gc", "verify"))
    p_cache.add_argument("dir", metavar="DIR", help="cache directory")
    p_cache.add_argument(
        "--max-age-days",
        type=float,
        default=None,
        help="gc: evict entries last written more than this many days ago",
    )
    p_cache.add_argument(
        "--max-size-mb",
        type=float,
        default=None,
        help="gc: evict oldest entries until the cache fits this size",
    )
    p_cache.add_argument(
        "--tmp-grace-minutes",
        type=float,
        default=60.0,
        help="gc: sweep .tmp-* files from crashed writers older than this",
    )

    p_serve = sub.add_parser(
        "serve",
        help="serve the synthesis API over HTTP (the JSON wire schema)",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    p_serve.add_argument(
        "--port", type=int, default=8080, help="TCP port (0 = ephemeral)"
    )
    p_serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per pooled session (0 = all CPUs)",
    )
    p_serve.add_argument(
        "--pool",
        type=int,
        default=2,
        help="warm sessions serving requests concurrently",
    )
    p_serve.add_argument(
        "--cache",
        metavar="DIR",
        default=None,
        help="shared result cache directory (default: a private temp dir "
        "owned by the server)",
    )
    p_serve.add_argument(
        "--npn-dedup",
        action="store_true",
        help="share whole-result cache entries across NP-equivalent targets",
    )
    p_serve.add_argument(
        "--dispatch",
        metavar="FILE",
        default=None,
        help="learned portfolio dispatch table shared by every pooled "
        "session (JSON; created if missing, saved on shutdown)",
    )
    p_serve.add_argument(
        "--frontend",
        choices=("threaded", "async"),
        default="threaded",
        help="HTTP transport: thread-per-connection (default) or a "
        "single-event-loop asyncio server",
    )
    p_serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fork N asyncio server processes sharing this port and one "
        "cache (implies --frontend async; POSIX only; default 1)",
    )
    p_serve.add_argument(
        "--verbose", action="store_true", help="log one line per request"
    )
    _add_solver_args(p_serve)

    p_gen = sub.add_parser(
        "gen",
        help="generate a seeded, reproducible synthesis workload (JSON)",
    )
    p_gen.add_argument(
        "--family",
        default="mixed",
        help="family kind, a comma list, or 'mixed' for every kind "
        "(random-tt, pla-cover, autosymmetric, d-reducible, "
        "multi-output, fault)",
    )
    p_gen.add_argument(
        "--level",
        type=int,
        default=1,
        help="difficulty-ladder level 0..4 (see docs/workloads.md)",
    )
    p_gen.add_argument(
        "--seed", type=int, default=0, help="base seed (instances use "
        "seed, seed+1, ... per family)",
    )
    p_gen.add_argument(
        "--count", type=int, default=1, help="instances per family kind"
    )
    p_gen.add_argument(
        "--backend",
        default="janus",
        help="backend name stamped into every generated request",
    )
    p_gen.add_argument(
        "--twins",
        action="store_true",
        help="emit SAT/UNSAT twin pairs at the realizability frontier "
        "instead of plain instances (runs synthesis; slower)",
    )
    p_gen.add_argument(
        "--out",
        metavar="FILE",
        default=None,
        help="write the batch_request JSON here instead of stdout",
    )
    p_gen.add_argument(
        "--list",
        action="store_true",
        help="list family kinds and ladder levels, then exit",
    )

    p_render = sub.add_parser(
        "render", help="synthesize and draw a lattice (ASCII or SVG)"
    )
    p_render.add_argument("expression", help="SOP, e.g. \"ab + a'c\"")
    p_render.add_argument(
        "--svg", metavar="FILE", help="write an SVG figure instead of ASCII"
    )
    p_render.add_argument(
        "--minterm",
        type=lambda s: int(s, 0),
        default=None,
        help="highlight the conducting path for this input vector",
    )
    p_render.add_argument(
        "--max-conflicts", type=int, default=60_000, help="SAT budget per LM"
    )

    p_dec = sub.add_parser(
        "decompose",
        help="analyze autosymmetry / D-reducibility of a function",
    )
    p_dec.add_argument("expression", help="SOP, e.g. \"ab + a'c\"")

    p_drat = sub.add_parser(
        "drat-check", help="check a DRAT refutation against a DIMACS file"
    )
    p_drat.add_argument("dimacs", help="CNF formula (DIMACS)")
    p_drat.add_argument("proof", help="refutation (DRAT text format)")

    p_faults = sub.add_parser(
        "faults", help="synthesize and run single-fault analysis"
    )
    p_faults.add_argument("expression", help="SOP, e.g. \"ab + a'c\"")
    p_faults.add_argument(
        "--max-conflicts", type=int, default=60_000, help="SAT budget per LM"
    )

    p_lint = sub.add_parser(
        "lint",
        help="run the repo's static-analysis suite (tools/janalyze)",
    )
    p_lint.add_argument(
        "--root", default=None, help="repo root (default: auto-detected)"
    )
    p_lint.add_argument(
        "--only", default=None, help="comma-separated checker names"
    )
    p_lint.add_argument(
        "--baseline", default=None, help="baseline file to apply"
    )
    p_lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather the current findings",
    )
    p_lint.add_argument(
        "--strict",
        action="store_true",
        help="also fail on stale baseline entries (CI mode)",
    )
    p_lint.add_argument(
        "--json", action="store_true", help="machine-readable JSON report"
    )
    p_lint.add_argument(
        "--list", action="store_true", help="list registered checkers"
    )

    return parser


def _engine_summary(stats: dict, jobs) -> str:
    text = (
        f"engine    : jobs={jobs or 'auto'} "
        f"solver_calls={stats['solver_calls']} "
        f"bound_calls={stats['bound_calls']} "
        f"cache hits/misses={stats['cache_hits']}/{stats['cache_misses']} "
        f"memory hits={stats['memory_hits']} "
        f"suite hits/misses={stats['suite_hits']}/{stats['suite_misses']} "
        f"speculated={stats['speculated']}\n"
        f"solver    : propagations={stats.get('propagations', 0)} "
        f"conflicts={stats.get('conflicts', 0)} "
        f"restarts={stats.get('solver_restarts', 0)} "
        f"reuse hits={stats.get('reuse_hits', 0)} "
        f"pruned shapes={stats.get('pruned_shapes', 0)} "
        f"restarts avoided={stats.get('restarts_avoided', 0)} "
        f"npn hits={stats.get('npn_hits', 0)}"
    )
    cores = stats.get("cores") or {}
    if cores:
        tally = " ".join(f"{k}={v}" for k, v in sorted(cores.items()))
        text += f"\ncore      : probes by core {tally}"
    wins = stats.get("preset_wins") or {}
    if wins:
        tally = " ".join(f"{k}={v}" for k, v in sorted(wins.items()))
        text += f"\nportfolio : preset wins {tally}"
    hits = stats.get("dispatch_hits", 0)
    misses = stats.get("dispatch_misses", 0)
    if hits or misses:
        text += f"\ndispatch  : learned hits/misses={hits}/{misses}"
    return text


def _read_request_document(path: str):
    """Parse a ``--request`` document: a single ``synthesis_request`` or
    a whole ``batch_request`` (the form ``janus gen`` emits)."""
    import json

    from repro.api import BatchRequest, SynthesisRequest
    from repro.errors import ValidationError

    text = sys.stdin.read() if path == "-" else open(path).read()
    try:
        wire = json.loads(text)
    except ValueError as exc:
        raise ValidationError(f"--request: not valid JSON: {exc}")
    kind = wire.get("kind") if isinstance(wire, dict) else None
    if kind == "batch_request":
        return BatchRequest.from_wire(wire)
    if kind == "synthesis_request":
        return SynthesisRequest.from_wire(wire)
    raise ValidationError(
        f"--request: expected kind synthesis_request or batch_request, "
        f"got {kind!r}"
    )


def _cmd_synth(args: argparse.Namespace) -> int:
    from repro.api import BatchRequest

    request = None
    spec = None
    if args.request:
        request = _read_request_document(args.request)
    elif args.pla:
        with open(args.pla) as fh:
            pla = read_pla(fh)
        tt = pla.output_truthtable(args.output)
        spec = TargetSpec.from_truthtable(
            tt, name=pla.output_names[args.output], names=pla.input_names
        )
    elif args.expression:
        spec = TargetSpec.from_string(args.expression)
    else:
        print(
            "error: provide an expression, --pla or --request",
            file=sys.stderr,
        )
        return 2
    options = RequestOptions(
        max_conflicts=args.max_conflicts,
        time_limit=args.time_limit,
        solver_config=_solver_config_from_args(args),
    )
    engine_wanted = bool(
        args.jobs != 1 or args.cache or args.portfolio or args.dispatch
    )
    with Session(
        jobs=args.jobs,
        cache=args.cache,
        portfolio=args.portfolio,
        npn=args.npn_dedup,
        dispatch=args.dispatch,
    ) as session:
        if isinstance(request, BatchRequest):
            batch = session.run_batch(request)
            engine_used = session._portfolio_engine or session._engine
            engine_jobs = engine_used.jobs if engine_used is not None else None
            if args.json:
                print(batch.to_json())
                return 0
            for response in batch.responses:
                print(
                    f"{response.name:<24} {response.shape:>6} = "
                    f"{response.size:>3} switches "
                    f"[{response.backend}] in {response.wall_time:.1f}s"
                )
            print(f"batch     : {len(batch.responses)} instances in "
                  f"{batch.wall_time:.1f}s")
            if engine_wanted and batch.stats is not None:
                print(_engine_summary(batch.stats, engine_jobs))
            return 0
        if request is not None:
            response = session.synthesize(
                request if args.backend is None
                else request.with_backend(args.backend)
            )
            spec = request.to_spec()
        else:
            response = session.synthesize(
                spec, backend=args.backend, options=options
            )
        engine_used = session._portfolio_engine or session._engine
        engine_jobs = engine_used.jobs if engine_used is not None else None
    if args.json:
        print(response.to_json())
        return 0
    if engine_wanted and response.stats is not None:
        print(_engine_summary(response.stats, engine_jobs))
    from repro.sat.solver import available_cores, resolve_core_class

    print(f"target    : {spec.name} (#in={spec.num_inputs}, "
          f"#pi={spec.num_products}, degree={spec.degree})")
    print(f"solver    : core={resolve_core_class().core_name} "
          f"(available: {', '.join(available_cores())})")
    print(f"isop      : {spec.isop.to_string()}")
    print(f"bounds    : lb={response.initial_lower_bound}, "
          f"initial ub={response.initial_upper_bound} {response.upper_bounds}")
    print(f"solution  : {response.shape} = {response.size} switches "
          f"({'provably minimum' if response.provably_minimum else 'approximate'}) "
          f"in {response.wall_time:.1f}s")
    print(response.result.assignment.to_text())
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    from repro.gen import (
        FAMILY_KINDS,
        LEVELS,
        generated_specs,
        ladder,
        make_twins,
        to_batch_request,
    )
    from repro.gen.workload import resolve_kinds

    if args.list:
        print(f"levels    : {', '.join(str(lv) for lv in LEVELS)}")
        for kind in FAMILY_KINDS:
            print(f"family    : {kind}")
        return 0
    kinds = resolve_kinds(args.family)
    if args.twins:
        specs = []
        for family, seed in ladder(
            kinds, levels=(args.level,), count=args.count,
            base_seed=args.seed,
        ):
            pair = make_twins(
                family.sample(seed), family.rng(seed, stream=1)
            )
            specs.extend((pair.sat, pair.unsat))
    else:
        specs = generated_specs(
            kinds, level=args.level, base_seed=args.seed, count=args.count
        )
    batch = to_batch_request(specs, backend=args.backend)
    text = batch.to_json()
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {len(specs)} requests to {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.bench.tables import table1

    print(table1(args.max, args.max, check=not args.no_check))
    return 0


def _cmd_fig4(_args: argparse.Namespace) -> int:
    from repro.bench.tables import fig4

    print(fig4().format())
    return 0


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.bench.tables import table2

    algorithms = tuple(a.strip() for a in args.algorithms.split(",") if a.strip())
    names = (
        [n.strip() for n in args.names.split(",") if n.strip()]
        if args.names
        else None
    )
    if args.jobs != 0:
        jobs = args.jobs
    else:
        from repro.engine import default_jobs

        jobs = default_jobs()
    import time

    start = time.monotonic()
    rows, report = table2(
        profile=args.profile,
        algorithms=algorithms,
        names=names,
        verbose=not args.json,
        jobs=jobs,
        cache=args.cache,
        portfolio=args.portfolio,
        npn=args.npn_dedup,
        solver_config=_solver_config_from_args(args),
    )
    elapsed = time.monotonic() - start
    snapshots = [r.engine for r in rows if r.engine]
    total = None
    if snapshots:
        import dataclasses

        from repro.engine import EngineStats

        total = EngineStats()
        for snapshot in snapshots:
            total.merge(snapshot)
    if args.json:
        from repro.api import BatchResponse, SynthesisResponse

        responses = [
            SynthesisResponse.from_wire(res.response)
            for row in rows
            for res in row.results.values()
            if res.response is not None
        ]
        # wall_time is elapsed batch time, the same meaning
        # Session.run_batch gives the field.
        batch = BatchResponse(
            responses=responses,
            wall_time=elapsed,
            stats=dataclasses.asdict(total) if total is not None else None,
        )
        print(batch.to_json())
        return 0
    print(report)
    if total is not None:
        import dataclasses

        print(_engine_summary(dataclasses.asdict(total), jobs))
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.engine import ResultCache, cache_stats, gc_cache

    root = Path(args.dir)
    if not root.is_dir():
        if root.exists():
            print(f"error: {args.dir} is not a directory", file=sys.stderr)
            return 2
        if args.action == "stats":
            # A cache directory that was never created is just an empty
            # cache — the common "stats before the first cached run"
            # case must not error out (and must not create the dir).
            print(f"cache     : {root} (not created yet)")
            print("entries   : 0 (0.00 MB)")
            print("temp files: 0 (0.00 MB)")
            return 0
        print(f"error: {args.dir} does not exist", file=sys.stderr)
        return 2
    cache = ResultCache(root)
    if args.action == "stats":
        st = cache_stats(cache)
        print(f"cache     : {root}")
        print(f"entries   : {st.entries} ({st.entry_bytes / 1e6:.2f} MB)")
        print(f"temp files: {st.temp_files} ({st.temp_bytes / 1e6:.2f} MB)")
        if st.entries:
            print(
                f"age       : oldest {st.oldest_age / 86400:.1f}d, "
                f"newest {st.newest_age / 86400:.1f}d"
            )
        return 0
    if args.action == "clear":
        print(f"removed {cache.clear()} entries")
        return 0
    if args.action == "verify":
        from repro.engine import verify_cache

        report = verify_cache(cache)
        print(
            f"replayed {report.checked} stored assignments: "
            f"{report.verified} verified, {report.mismatched} mismatched"
        )
        print(
            f"skipped   : {report.skipped} without assignments, "
            f"{report.unverifiable} without spec snapshots, "
            f"{report.corrupt} corrupt"
        )
        for key in report.mismatches:
            print(f"MISMATCH  : {key}", file=sys.stderr)
        return 0 if report.ok else 1
    report = gc_cache(
        cache,
        max_age=(
            args.max_age_days * 86400.0
            if args.max_age_days is not None
            else None
        ),
        max_bytes=(
            int(args.max_size_mb * 1e6)
            if args.max_size_mb is not None
            else None
        ),
        tmp_grace=args.tmp_grace_minutes * 60.0,
    )
    print(
        f"evicted {report.evicted} entries "
        f"({report.evicted_by_age} by age, {report.evicted_by_size} by size, "
        f"{report.evicted_bytes / 1e6:.2f} MB), "
        f"swept {report.swept_temps} temp files, "
        f"pruned {report.pruned_dirs} empty dirs"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.server import make_server
    from repro.server.multiproc import (
        MultiProcessServer,
        multiprocess_supported,
        reuse_port_supported,
    )

    workers = max(1, args.workers)
    if workers > 1 and not multiprocess_supported():
        print(
            "janus serve: --workers needs the fork start method (POSIX); "
            "falling back to a single process",
            file=sys.stderr,
        )
        workers = 1
    common = dict(
        host=args.host,
        port=args.port,
        jobs=args.jobs,
        pool=args.pool,
        cache=args.cache,
        npn=args.npn_dedup,
        verbose=args.verbose,
        preset=_solver_config_from_args(args),
        dispatch=args.dispatch,
    )
    if workers > 1:
        server = MultiProcessServer(workers=workers, **common)
        sharing = (
            "SO_REUSEPORT" if reuse_port_supported() else "inherited socket"
        )
        front = f"async x {workers} processes ({sharing})"
    else:
        server = make_server(frontend=args.frontend, **common)
        front = args.frontend
    host, port = server.address
    print(f"janus serve: listening on http://{host}:{port}")
    print(f"frontend  : {front}")
    print(f"cache     : {server.cache_dir}"
          + (" (server-owned, temporary)" if args.cache is None else ""))
    if workers == 1:
        print(f"pool      : {server.pool.size} sessions x "
              f"{server.pool.jobs} worker(s)")
    else:
        print(f"pool      : {args.pool} sessions x {args.jobs} worker(s) "
              "per process")
    print("endpoints : POST /v1/synthesize  POST /v1/batch[?mode=async]")
    print("            GET /v1/jobs/<id>  /v1/events/<id>  /v1/backends")
    print("            GET /v1/cache/stats  /healthz")

    # SIGTERM must run the same orderly shutdown as Ctrl-C: with
    # --workers the default handler would kill only this parent and
    # orphan the forked workers, which keep serving the port.
    import signal

    def _sigterm(_signum, _frame):
        raise KeyboardInterrupt

    previous = signal.signal(signal.SIGTERM, _sigterm)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        signal.signal(signal.SIGTERM, previous)
        server.close()
    return 0


def _cmd_table3(args: argparse.Namespace) -> int:
    from repro.bench.tables import table3

    names = [n.strip() for n in args.names.split(",") if n.strip()]
    _rows, report = table3(names)
    print(report)
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.lattice.render import render_ascii, render_svg

    spec = TargetSpec.from_string(args.expression)
    options = RequestOptions(max_conflicts=args.max_conflicts)
    result = api_synthesize(spec, options=options).result
    print(f"solution: {result.shape} = {result.size} switches")
    if args.minterm is not None and not spec.tt.evaluate(args.minterm):
        print(f"note: minterm {args.minterm:#x} is not in the onset; "
              "nothing will conduct")
    if args.svg:
        with open(args.svg, "w") as fh:
            fh.write(render_svg(result.assignment, minterm=args.minterm))
        print(f"wrote {args.svg}")
    else:
        print(render_ascii(result.assignment, minterm=args.minterm))
    return 0


def _cmd_decompose(args: argparse.Namespace) -> int:
    from repro.boolf.cube import literal_name
    from repro.core.autosymmetric import reduce_autosymmetric
    from repro.core.dreducible import affine_hull, reduce_dreducible

    spec = TargetSpec.from_string(args.expression)
    names = list(spec.names) if spec.names else None

    red = reduce_autosymmetric(spec.tt)
    print(f"autosymmetry degree k = {red.degree}")
    if red.degree:
        print(f"  restriction: {red.restriction.num_vars} variables")
        for i, mask in enumerate(red.functionals):
            terms = " ^ ".join(
                literal_name(v, True, names)
                for v in range(spec.num_inputs)
                if mask >> v & 1
            )
            print(f"  y{i} = {terms}")

    if spec.tt.is_zero():
        print("D-reducible: no (zero function)")
        return 0
    hull = affine_hull(spec.tt)
    proper = hull.dimension < spec.num_inputs
    print(f"D-reducible: {'yes' if proper else 'no'} "
          f"(affine hull dimension {hull.dimension} of {spec.num_inputs})")
    if proper:
        dred = reduce_dreducible(spec.tt)
        print(f"  projection: {dred.projection.num_vars} variables; "
              f"{len(dred.cube_constraints)} fixed-variable and "
              f"{len(dred.exor_constraints)} EXOR constraints")
    return 0


def _cmd_drat_check(args: argparse.Namespace) -> int:
    from repro.sat.dimacs import read_dimacs
    from repro.sat.drat import check_refutation, read_drat

    with open(args.dimacs) as fh:
        cnf = read_dimacs(fh)
    with open(args.proof) as fh:
        proof = read_drat(fh)
    check = check_refutation(cnf, proof)
    if check.valid:
        print(f"VALID ({check.steps_checked} steps)")
        return 0
    print(f"INVALID: {check.reason}", file=sys.stderr)
    return 1


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.lattice.faults import fault_coverage, fault_table, minimal_test_set

    spec = TargetSpec.from_string(args.expression)
    options = RequestOptions(max_conflicts=args.max_conflicts)
    result = api_synthesize(spec, options=options).result
    print(f"lattice: {result.shape} = {result.size} switches")
    report = fault_table(result.assignment)
    print(f"faults: {report.num_faults} total, {len(report.testable)} "
          f"testable, {len(report.redundant)} redundant")
    tests = minimal_test_set(report)
    print(f"minimal test set ({len(tests)} vectors):")
    for vec in tests:
        print(f"  {vec:0{spec.num_inputs}b}")
    assert fault_coverage(report, tests) == 1.0
    return 0


def _cmd_lint(args) -> int:
    """``janus lint``: the repo's static-analysis suite.

    The analyzer lives in ``tools/janalyze`` at the repo root — outside
    the installed package — so this handler locates the checkout (the
    ``--root`` flag, the working directory, or the source tree this
    module was imported from) and puts it on ``sys.path`` before
    delegating.  Exit codes: 0 clean, 1 findings, 2 usage error.
    """
    from pathlib import Path

    def has_janalyze(root: Path) -> bool:
        return (root / "tools" / "janalyze" / "__init__.py").is_file()

    candidates = []
    if args.root:
        candidates.append(Path(args.root).resolve())
    cwd = Path.cwd().resolve()
    candidates.extend([cwd, *cwd.parents])
    # An editable/source checkout: src/repro/cli.py -> repo root.
    candidates.append(Path(__file__).resolve().parents[2])
    root = next((c for c in candidates if has_janalyze(c)), None)
    if root is None:
        print(
            "error: no tools/janalyze found — run from a repo checkout "
            "or pass --root",
            file=sys.stderr,
        )
        return 2

    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    from tools.janalyze.runner import main as janalyze_main

    argv = ["--root", str(root)]
    if args.only:
        argv += ["--only", args.only]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    for flag in ("write_baseline", "strict", "json", "list"):
        if getattr(args, flag):
            argv.append("--" + flag.replace("_", "-"))
    return janalyze_main(argv)


def main(argv: Optional[Sequence[str]] = None) -> int:
    from repro.errors import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "synth": _cmd_synth,
        "table1": _cmd_table1,
        "fig4": _cmd_fig4,
        "table2": _cmd_table2,
        "table3": _cmd_table3,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "render": _cmd_render,
        "decompose": _cmd_decompose,
        "drat-check": _cmd_drat_check,
        "faults": _cmd_faults,
        "lint": _cmd_lint,
        "gen": _cmd_gen,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        # Malformed inputs (bad PLA/BLIF/DIMACS files, inconsistent
        # specs) are user errors, not crashes: report them cleanly.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
