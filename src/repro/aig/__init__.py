"""And-Inverter Graphs (AIGs) and SAT-based equivalence checking.

The paper's LM encoding works by building, per truth-table entry, the
combinational circuit of the lattice function and converting it to a POS
formula (its Fig. 2/Fig. 3).  This subpackage provides that circuit
substrate as a first-class citizen:

* :class:`Aig` — structurally hashed and-inverter graphs with complement
  edges, builders from covers/tables, constant propagation and
  simulation;
* :func:`tseitin` — the standard CNF encoding of an AIG cone (the
  general form of the paper's per-gate POS formulas);
* :func:`miter` / :func:`equivalent_sat` — combinational equivalence
  checking by SAT, used in tests to cross-verify lattice realizations
  against their targets through a second, independent pipeline.
"""

from repro.aig.graph import Aig, AigLit
from repro.aig.tseitin import equivalent_sat, miter, tseitin
from repro.aig.blif import BlifModel, read_blif, write_blif

__all__ = [
    "Aig",
    "AigLit",
    "tseitin",
    "miter",
    "equivalent_sat",
    "BlifModel",
    "read_blif",
    "write_blif",
]
