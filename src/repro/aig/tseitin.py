"""Tseitin CNF encoding of AIG cones and SAT equivalence checking.

:func:`tseitin` generalizes the per-gate POS formulas of the paper's
Fig. 2: each AND node ``n = a & b`` contributes the three clauses

    (~n | a)  (~n | b)  (n | ~a | ~b)

with complemented edges folded into literal signs.  :func:`miter` wires
two output literals into an XOR whose satisfiability decides
inequivalence; :func:`equivalent_sat` runs the library's CDCL solver on
the miter and returns the verdict (with a counterexample minterm when
the functions differ).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import EncodingError
from repro.aig.graph import Aig, AigLit
from repro.sat.cnf import Cnf, VarPool
from repro.sat.solver import CdclSolver, SolverConfig

__all__ = ["tseitin", "miter", "equivalent_sat"]


def tseitin(
    aig: Aig,
    lit: AigLit,
    cnf: Optional[Cnf] = None,
    var_map: Optional[dict[int, int]] = None,
) -> tuple[Cnf, int, dict[int, int]]:
    """Encode the cone of ``lit``; returns ``(cnf, output_sat_lit, var_map)``.

    ``var_map`` maps AIG nodes to SAT variables; pass an existing map (and
    matching ``cnf``) to share input variables across several cones — the
    mechanism :func:`miter` uses.  The constant node 0 is encoded once as
    a frozen SAT variable.
    """
    if cnf is None:
        cnf = Cnf(VarPool())
    if var_map is None:
        var_map = {}

    def sat_var(node: int) -> int:
        var = var_map.get(node)
        if var is None:
            var = cnf.pool.var(("aig", node))
            var_map[node] = var
            if node == 0:
                cnf.add([-var])  # constant FALSE
        return var

    def sat_lit(aig_lit: AigLit) -> int:
        var = sat_var(aig_lit >> 1)
        return -var if aig_lit & 1 else var

    for node in aig.cone(lit):
        if node == 0 or aig.is_input(node):
            sat_var(node)
            continue
        if node in var_map:
            continue  # already encoded by a previous cone
        a, b = aig.fanins(node)
        n = sat_var(node)
        la, lb = sat_lit(a), sat_lit(b)
        cnf.add([-n, la])
        cnf.add([-n, lb])
        cnf.add([n, -la, -lb])
    return cnf, sat_lit(lit), var_map


def miter(aig: Aig, f: AigLit, g: AigLit) -> tuple[Cnf, dict[int, int]]:
    """CNF satisfiable iff the two outputs differ on some input vector."""
    cnf = Cnf(VarPool())
    var_map: dict[int, int] = {}
    _, lit_f, _ = tseitin(aig, f, cnf, var_map)
    _, lit_g, _ = tseitin(aig, g, cnf, var_map)
    # XOR output: (f | g) & (~f | ~g) under an asserted output variable —
    # directly as two clauses since the output is asserted true.
    cnf.add([lit_f, lit_g])
    cnf.add([-lit_f, -lit_g])
    return cnf, var_map


def equivalent_sat(
    aig: Aig,
    f: AigLit,
    g: AigLit,
    max_conflicts: Optional[int] = None,
    config: Optional[SolverConfig] = None,
) -> tuple[bool, Optional[int]]:
    """Decide ``f == g`` by SAT.  Returns ``(equivalent, counterexample)``.

    The counterexample is a minterm where the outputs differ (``None``
    when equivalent).  Raises :class:`~repro.errors.EncodingError` if the
    solver's conflict budget runs out — equivalence checking must never
    silently guess.  ``config`` tunes the CDCL solver; an explicit
    ``max_conflicts`` overrides the config's budget.
    """
    cnf, var_map = miter(aig, f, g)
    solver = CdclSolver(config=config) if max_conflicts is None else (
        CdclSolver(max_conflicts=max_conflicts, config=config)
    )
    ok = True
    for clause in cnf:
        ok = solver.add_clause(clause) and ok
    if not ok:
        return True, None  # miter is trivially UNSAT
    result = solver.solve()
    if result.status == "unknown":
        raise EncodingError("equivalence check exceeded its conflict budget")
    if result.is_unsat:
        return True, None
    minterm = 0
    for index in range(aig.num_inputs):
        node = index + 1
        var = var_map.get(node)
        if var is not None and result.value(var):
            minterm |= 1 << index
    return False, minterm
