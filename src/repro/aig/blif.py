"""BLIF (Berkeley Logic Interchange Format) reading and writing.

The LGSynth91 suite the paper benchmarks against ships as PLAs and BLIF
netlists; :mod:`repro.boolf.pla` covers the former, this module the
latter.  A BLIF model is parsed into an :class:`~repro.aig.graph.Aig`:
each ``.names`` node's single-output cover becomes an OR of ANDs over
its fanins.  Writing serializes an AIG's output cones with one
``.names`` per AND node — the canonical structural-BLIF style ABC uses.

Supported constructs: ``.model``, ``.inputs``, ``.outputs``, ``.names``
(on-set and off-set covers, ``-`` don't-cares, constant nodes), ``.end``
and ``#`` comments, with line continuation via ``\\``.  Latches and
subcircuits are out of scope (the benchmark netlists are combinational).
"""

from __future__ import annotations

from typing import Optional, TextIO

from repro.errors import DimensionError, ParseError
from repro.aig.graph import Aig, AigLit

__all__ = ["BlifModel", "read_blif", "write_blif"]


class BlifModel:
    """A parsed combinational BLIF model bound to an AIG."""

    def __init__(
        self,
        name: str,
        aig: Aig,
        input_names: list[str],
        outputs: dict[str, AigLit],
    ) -> None:
        self.name = name
        self.aig = aig
        self.input_names = input_names
        self.outputs = outputs

    def output_lit(self, name: str) -> AigLit:
        if name not in self.outputs:
            raise DimensionError(
                f"unknown output {name!r}; known: {sorted(self.outputs)}"
            )
        return self.outputs[name]

    def output_truthtable(self, name: str):
        return self.aig.to_truthtable(self.output_lit(name))

    def __repr__(self) -> str:
        return (
            f"BlifModel({self.name!r}, inputs={len(self.input_names)}, "
            f"outputs={len(self.outputs)}, ands={self.aig.num_ands()})"
        )


def _logical_lines(stream: TextIO) -> list[list[str]]:
    """Tokenized lines with continuations joined and comments stripped."""
    out: list[list[str]] = []
    pending = ""
    for raw in stream:
        line = raw.split("#", 1)[0].rstrip("\n")
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        line = pending + line
        pending = ""
        tokens = line.split()
        if tokens:
            out.append(tokens)
    if pending.strip():
        out.append(pending.split())
    return out


def read_blif(stream: TextIO) -> BlifModel:
    """Parse one combinational BLIF model into an AIG."""
    lines = _logical_lines(stream)
    model_name = "top"
    input_names: list[str] = []
    output_names: list[str] = []
    # signal -> (fanin signal names, cover rows [(inputs, output_char)])
    nodes: dict[str, tuple[list[str], list[tuple[str, str]]]] = {}

    current: Optional[str] = None
    for tokens in lines:
        head = tokens[0]
        if head == ".model":
            model_name = tokens[1] if len(tokens) > 1 else model_name
            current = None
        elif head == ".inputs":
            input_names.extend(tokens[1:])
            current = None
        elif head == ".outputs":
            output_names.extend(tokens[1:])
            current = None
        elif head == ".names":
            if len(tokens) < 2:
                raise ParseError(".names needs at least an output")
            *fanins, output = tokens[1:]
            nodes[output] = (list(fanins), [])
            current = output
        elif head == ".end":
            current = None
        elif head.startswith("."):
            raise DimensionError(f"unsupported BLIF construct {head!r}")
        else:
            if current is None:
                raise ParseError(f"cover row outside .names: {tokens}")
            fanins, rows = nodes[current]
            if fanins:
                if len(tokens) != 2:
                    raise ParseError(f"bad cover row: {tokens}")
                pattern, value = tokens
                if len(pattern) != len(fanins):
                    raise ParseError(
                        f"pattern {pattern!r} width != {len(fanins)} fanins"
                    )
            else:
                if len(tokens) != 1:
                    raise ParseError(
                        f"constant node expects a bare output value: {tokens}"
                    )
                pattern, value = "", tokens[0]
            if value not in ("0", "1"):
                raise ParseError(f"bad output value {value!r}")
            rows.append((pattern, value))

    aig = Aig(len(input_names))
    literals: dict[str, AigLit] = {
        name: aig.input_lit(i) for i, name in enumerate(input_names)
    }

    def elaborate(signal: str) -> AigLit:
        """AND/OR network for one ``.names`` node whose fanins are built."""
        fanins, rows = nodes[signal]
        fanin_lits = [literals[f] for f in fanins]
        # Split rows by output polarity; BLIF requires a single polarity
        # per node, but we accept either.
        polarity = {value for _, value in rows} or {"1"}
        if len(polarity) > 1:
            raise DimensionError(f"mixed-polarity cover on {signal!r}")
        products = []
        for pattern, _ in rows:
            term = aig.true
            for ch, fanin_lit in zip(pattern, fanin_lits):
                if ch == "1":
                    term = aig.and_(term, fanin_lit)
                elif ch == "0":
                    term = aig.and_(term, fanin_lit ^ 1)
                elif ch != "-":
                    raise ParseError(f"bad pattern character {ch!r}")
            products.append(term)
        lit = aig.disjoin(products) if rows else aig.false
        if polarity == {"0"}:
            lit ^= 1
        return lit

    def build(root: str) -> AigLit:
        # Iterative post-order elaboration: a chain of thousands of gates
        # is a legitimate netlist and must not hit the recursion limit.
        got = literals.get(root)
        if got is not None:
            return got
        on_path: set[str] = set()
        stack: list[tuple[str, bool]] = [(root, False)]
        while stack:
            signal, expanded = stack.pop()
            if expanded:
                on_path.discard(signal)
                literals[signal] = elaborate(signal)
                continue
            if signal in literals:
                continue
            if signal in on_path:
                raise DimensionError(f"combinational cycle through {signal!r}")
            if signal not in nodes:
                raise DimensionError(f"undriven signal {signal!r}")
            on_path.add(signal)
            stack.append((signal, True))
            for fanin in nodes[signal][0]:
                if fanin not in literals:
                    stack.append((fanin, False))
        return literals[root]

    outputs = {name: build(name) for name in output_names}
    return BlifModel(model_name, aig, input_names, outputs)


def write_blif(
    model: BlifModel,
    stream: TextIO,
) -> None:
    """Serialize the model structurally: one ``.names`` per AND node."""
    aig = model.aig
    stream.write(f".model {model.name}\n")
    stream.write(".inputs " + " ".join(model.input_names) + "\n")
    stream.write(".outputs " + " ".join(model.outputs) + "\n")

    def signal(lit: AigLit) -> str:
        node = lit >> 1
        if node == 0:
            base = "const0"
        elif aig.is_input(node):
            base = model.input_names[node - 1]
        else:
            base = f"n{node}"
        return base

    emitted: set[int] = set()
    needs_const = False

    def emit_cone(lit: AigLit) -> None:
        nonlocal needs_const
        for node in aig.cone(lit):
            if node in emitted:
                continue
            emitted.add(node)
            if node == 0:
                needs_const = True
            elif aig.is_and(node):
                a, b = aig.fanins(node)
                pa = "0" if a & 1 else "1"
                pb = "0" if b & 1 else "1"
                stream.write(
                    f".names {signal(a)} {signal(b)} n{node}\n{pa}{pb} 1\n"
                )

    buffers: list[str] = []
    for name, lit in model.outputs.items():
        emit_cone(lit)
        inverted = "0" if lit & 1 else "1"
        src = signal(lit)
        if lit >> 1 == 0:
            needs_const = True
        buffers.append(f".names {src} {name}\n{inverted} 1\n")
    if needs_const:
        stream.write(".names const0\n")  # empty cover = constant 0
    for text in buffers:
        stream.write(text)
    stream.write(".end\n")
