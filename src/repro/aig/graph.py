"""Structurally hashed and-inverter graphs.

An AIG literal (:class:`AigLit`) is an even integer ``2 * node`` or its
complement ``2 * node + 1``.  Node 0 is the constant FALSE, so literal 1
is TRUE.  Primary inputs occupy nodes ``1 .. num_inputs``; AND nodes
follow.  The manager enforces the classic normalizations:

* operand order (smaller literal first) — commutativity collapses;
* constant and idempotence rules (``x & 0 = 0``, ``x & x = x``,
  ``x & ~x = 0``, ``x & 1 = x``);
* structural hashing — one node per distinct normalized operand pair.

ORs, XORs, MUXes are built from ANDs and complement edges the usual way.
The graph is append-only; dead nodes are simply never visited (cone
walks are by reachability).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.errors import DimensionError
from repro.boolf.cube import Cube
from repro.boolf.sop import Sop
from repro.boolf.truthtable import TruthTable

__all__ = ["Aig", "AigLit"]

AigLit = int  # 2*node (+1 when complemented)

FALSE: AigLit = 0
TRUE: AigLit = 1


class Aig:
    """An and-inverter graph over a fixed set of primary inputs."""

    def __init__(self, num_inputs: int) -> None:
        if num_inputs < 0:
            raise DimensionError("num_inputs must be non-negative")
        self.num_inputs = num_inputs
        # fanins[i] = (lit0, lit1) for AND node i; None for const/inputs.
        self._fanins: list[Optional[tuple[AigLit, AigLit]]] = [None] * (
            num_inputs + 1
        )
        self._hash: dict[tuple[AigLit, AigLit], AigLit] = {}

    # ------------------------------------------------------------- literals
    @property
    def false(self) -> AigLit:
        return FALSE

    @property
    def true(self) -> AigLit:
        return TRUE

    def input_lit(self, index: int) -> AigLit:
        """Literal of primary input ``index`` (0-based)."""
        if not 0 <= index < self.num_inputs:
            raise DimensionError(f"input {index} out of range")
        return (index + 1) * 2

    @staticmethod
    def negate(lit: AigLit) -> AigLit:
        return lit ^ 1

    @staticmethod
    def node_of(lit: AigLit) -> int:
        return lit >> 1

    @staticmethod
    def is_complemented(lit: AigLit) -> bool:
        return bool(lit & 1)

    def is_input(self, node: int) -> bool:
        return 1 <= node <= self.num_inputs

    def is_and(self, node: int) -> bool:
        return node > self.num_inputs

    def fanins(self, node: int) -> tuple[AigLit, AigLit]:
        pair = self._fanins[node]
        if pair is None:
            raise DimensionError(f"node {node} is not an AND node")
        return pair

    @property
    def num_nodes(self) -> int:
        """Total allocated nodes (constant + inputs + ANDs)."""
        return len(self._fanins)

    def num_ands(self) -> int:
        return self.num_nodes - self.num_inputs - 1

    # ------------------------------------------------------------- builders
    def and_(self, a: AigLit, b: AigLit) -> AigLit:
        """AND with full normalization and structural hashing."""
        if a > b:
            a, b = b, a
        if a == FALSE:
            return FALSE
        if a == TRUE:
            return b
        if a == b:
            return a
        if a ^ b == 1:  # x & ~x
            return FALSE
        key = (a, b)
        existing = self._hash.get(key)
        if existing is not None:
            return existing
        node = len(self._fanins)
        self._fanins.append(key)
        lit = node * 2
        self._hash[key] = lit
        return lit

    def or_(self, a: AigLit, b: AigLit) -> AigLit:
        return self.and_(a ^ 1, b ^ 1) ^ 1

    def xor_(self, a: AigLit, b: AigLit) -> AigLit:
        return self.or_(self.and_(a, b ^ 1), self.and_(a ^ 1, b))

    def mux(self, sel: AigLit, then: AigLit, else_: AigLit) -> AigLit:
        return self.or_(self.and_(sel, then), self.and_(sel ^ 1, else_))

    def conjoin(self, lits: Iterable[AigLit]) -> AigLit:
        out = TRUE
        for lit in lits:
            out = self.and_(out, lit)
        return out

    def disjoin(self, lits: Iterable[AigLit]) -> AigLit:
        out = FALSE
        for lit in lits:
            out = self.or_(out, lit)
        return out

    def from_cube(self, cube: Cube) -> AigLit:
        if cube.num_vars != self.num_inputs:
            raise DimensionError("cube universe mismatch")
        return self.conjoin(
            self.input_lit(var) ^ (0 if positive else 1)
            for var, positive in cube.literals()
        )

    def from_sop(self, sop: Sop) -> AigLit:
        if sop.num_vars != self.num_inputs:
            raise DimensionError("sop universe mismatch")
        return self.disjoin(self.from_cube(c) for c in sop.cubes)

    def from_truthtable(self, tt: TruthTable) -> AigLit:
        """Shannon decomposition with hashing (small tables only)."""
        if tt.num_vars != self.num_inputs:
            raise DimensionError("truth table universe mismatch")

        def build(table: TruthTable, var: int) -> AigLit:
            if table.is_zero():
                return FALSE
            if table.is_one():
                return TRUE
            lo = build(table.restrict(var, False), var + 1)
            hi = build(table.restrict(var, True), var + 1)
            return self.mux(self.input_lit(var), hi, lo)

        return build(tt, 0)

    # ----------------------------------------------------------- evaluation
    def evaluate(self, lit: AigLit, minterm: int) -> bool:
        """Evaluate one output literal on one input vector.

        Iterative over the topologically sorted cone, so deep graphs never
        hit the recursion limit.
        """
        values: dict[int, bool] = {0: False}
        for node in self.cone(lit):
            if node == 0:
                continue
            if self.is_input(node):
                values[node] = bool(minterm >> (node - 1) & 1)
            else:
                a, b = self.fanins(node)
                values[node] = (values[a >> 1] ^ bool(a & 1)) and (
                    values[b >> 1] ^ bool(b & 1)
                )
        return bool(values[lit >> 1] ^ bool(lit & 1))

    def to_truthtable(self, lit: AigLit) -> TruthTable:
        """Bit-parallel simulation of the cone over all input vectors."""
        import numpy as np

        node_vals: dict[int, "np.ndarray"] = {
            0: np.zeros(1 << self.num_inputs, dtype=bool)
        }
        idx = np.arange(1 << self.num_inputs, dtype=np.int64)
        for node in self.cone(lit):
            if node == 0:
                continue
            if self.is_input(node):
                node_vals[node] = (idx >> (node - 1) & 1).astype(bool)
            else:
                a, b = self.fanins(node)
                av = node_vals[a >> 1] ^ bool(a & 1)
                bv = node_vals[b >> 1] ^ bool(b & 1)
                node_vals[node] = av & bv
        values = node_vals[lit >> 1] ^ bool(lit & 1)
        return TruthTable(values, self.num_inputs)

    # ------------------------------------------------------------ structure
    def cone(self, lit: AigLit) -> list[int]:
        """Nodes in the transitive fanin of ``lit``, topologically sorted
        (fanins before fanouts); includes the literal's own node."""
        seen: set[int] = set()
        order: list[int] = []
        stack: list[tuple[int, bool]] = [(lit >> 1, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if node in seen:
                continue
            seen.add(node)
            stack.append((node, True))
            if self.is_and(node):
                a, b = self.fanins(node)
                stack.append((a >> 1, False))
                stack.append((b >> 1, False))
        return order

    def cone_size(self, lit: AigLit) -> int:
        """AND nodes in the cone of ``lit`` (the usual AIG size metric)."""
        return sum(1 for node in self.cone(lit) if self.is_and(node))

    def __repr__(self) -> str:
        return (
            f"Aig(inputs={self.num_inputs}, ands={self.num_ands()})"
        )
