"""Replay stored cache entries against their specs: ``janus cache verify``.

Cache entries written since the wire-schema consolidation carry a spec
snapshot (onset/don't-care truth-table bits) next to every stored
assignment.  Verification rebuilds each assignment, recomputes the
function it realizes by flood-fill connectivity, and checks it lies in
the admissible interval ``onset <= realized <= onset | dc`` — the same
acceptance test the synthesizer applies to fresh SAT decodes.

A mismatch means the entry would hand a wrong lattice to a warm run
(cache corruption, a key collision, or an encoder bug frozen into the
store) and is reported with its key so it can be deleted.  Entries
without a snapshot (pre-schema writes) or without an assignment
(``unsat``/``unknown`` probes, bounds reports) cannot be replayed and
are counted as skipped.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.cache import ResultCache
from repro.engine.wire import assignment_from_wire, snapshot_tables

__all__ = ["VerifyReport", "verify_cache"]


@dataclass
class VerifyReport:
    """Outcome of one cache verification sweep."""

    checked: int = 0  # entries with a replayable assignment + snapshot
    verified: int = 0  # ... of those, assignments realizing their spec
    mismatched: int = 0  # ... of those, assignments that do NOT
    skipped: int = 0  # no assignment to replay (unsat/unknown/bounds)
    unverifiable: int = 0  # assignment but no spec snapshot (old format)
    corrupt: int = 0  # payloads that fail to decode at all
    mismatches: list[str] = field(default_factory=list)  # offending keys

    @property
    def ok(self) -> bool:
        return self.mismatched == 0 and self.corrupt == 0


def _entry_assignments(payload: dict):
    """Yield every (assignment_wire, snapshot|None) pair in a payload.

    Probe entries hold one assignment; suite-level ``synthesis`` entries
    hold the final assignment; ``bounds`` entries hold none.
    """
    assignment = payload.get("assignment")
    if assignment is not None:
        yield assignment, payload.get("spec")


def verify_cache(cache: ResultCache) -> VerifyReport:
    """Replay every stored assignment in ``cache`` against its spec."""
    report = VerifyReport()
    for path in cache.iter_entries():
        key = path.name[: -len(".json")]
        payload = cache.get(key)
        if payload is None:
            report.corrupt += 1
            report.mismatches.append(key)
            continue
        pairs = list(_entry_assignments(payload))
        if not pairs:
            report.skipped += 1
            continue
        for assignment_wire, snapshot in pairs:
            if snapshot is None:
                report.unverifiable += 1
                continue
            report.checked += 1
            try:
                onset, upper = snapshot_tables(snapshot)
                assignment = assignment_from_wire(
                    assignment_wire, snapshot["num_vars"]
                )
                realized = assignment.realized_truthtable()
                ok = bool(
                    ((onset.values & ~realized.values).sum() == 0)
                    and ((realized.values & ~upper.values).sum() == 0)
                )
            # janalyze: allow-broad-except replaying arbitrary (possibly
            # corrupt) cache entries — any decode/replay failure means
            # the entry is counted as mismatched, not crash the audit
            except Exception:
                ok = False
            if ok:
                report.verified += 1
            else:
                report.mismatched += 1
                report.mismatches.append(key)
    return report
