"""Work items executed inside engine worker processes.

Everything here must be picklable and importable at module level (the
pool pickles the *function reference* plus its arguments).  Results cross
the process boundary as plain JSON-able dicts — the same payloads the
:class:`~repro.engine.cache.ResultCache` stores, so a worker result can
be written to the cache verbatim and a cache hit decodes through the
same path as a pool result.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SynthesisError
from repro.core.bounds import UB_METHODS, BoundResult
from repro.core.janus import JanusOptions, LmAttempt, LmOutcome, solve_lm
from repro.core.target import TargetSpec
from repro.lattice.assignment import Entry, LatticeAssignment

__all__ = [
    "LmRequest",
    "run_lm_request",
    "run_bound_request",
    "outcome_payload",
    "outcome_from_payload",
    "bound_payload",
    "bound_from_payload",
]


@dataclass(frozen=True)
class LmRequest:
    """One LM probe: everything a worker needs, budgets included."""

    spec: TargetSpec
    rows: int
    cols: int
    options: JanusOptions
    backend: str = "eager"  # "eager" (paper encoding) | "lazy" (CEGAR)


def _assignment_payload(assignment: Optional[LatticeAssignment]) -> Optional[dict]:
    if assignment is None:
        return None
    return {
        "rows": assignment.rows,
        "cols": assignment.cols,
        "entries": [[e.var, e.positive] for e in assignment.entries],
    }


def _assignment_from_payload(
    payload: Optional[dict], spec: TargetSpec
) -> Optional[LatticeAssignment]:
    if payload is None:
        return None
    entries = [
        Entry.lit(var, positive) if var is not None else Entry.const(positive)
        for var, positive in payload["entries"]
    ]
    return LatticeAssignment(
        payload["rows"],
        payload["cols"],
        entries,
        spec.num_inputs,
        spec.name_list(),
    )


def outcome_payload(outcome: LmOutcome) -> dict:
    """Serialize an :class:`LmOutcome` for IPC and the result cache."""
    a = outcome.attempt
    return {
        "status": outcome.status,
        "assignment": _assignment_payload(outcome.assignment),
        "attempt": {
            "rows": a.rows,
            "cols": a.cols,
            "status": a.status,
            "side": a.side,
            "complexity": a.complexity,
            "conflicts": a.conflicts,
            "wall_time": a.wall_time,
        },
    }


def outcome_from_payload(
    payload: dict, spec: TargetSpec, cached: bool = False
) -> LmOutcome:
    """Rebuild an :class:`LmOutcome`; names come from the *current* spec."""
    a = payload["attempt"]
    attempt = LmAttempt(
        rows=a["rows"],
        cols=a["cols"],
        status=a["status"],
        side=a["side"],
        complexity=a["complexity"],
        conflicts=a["conflicts"],
        wall_time=a["wall_time"],
        cached=cached,
    )
    assignment = _assignment_from_payload(payload["assignment"], spec)
    return LmOutcome(payload["status"], assignment, attempt)


def run_lm_request(request: LmRequest) -> dict:
    """Pool entry point: decide one LM instance, return a payload."""
    if request.backend == "lazy":
        from repro.core.cegar import solve_lm_lazy

        outcome = solve_lm_lazy(
            request.spec, request.rows, request.cols, request.options
        )
    else:
        outcome = solve_lm(
            request.spec, request.rows, request.cols, request.options
        )
    return outcome_payload(outcome)


def bound_payload(bound: BoundResult) -> dict:
    return {
        "method": bound.method,
        "assignment": _assignment_payload(bound.assignment),
    }


def bound_from_payload(payload: dict, spec: TargetSpec) -> BoundResult:
    return BoundResult(
        payload["method"],
        _assignment_from_payload(payload["assignment"], spec),
    )


def run_bound_request(args: tuple[TargetSpec, str]) -> Optional[dict]:
    """Pool entry point: one upper-bound construction, or None if it
    does not apply to this target (mirrors the serial ``try/except``)."""
    spec, method = args
    try:
        return bound_payload(UB_METHODS[method](spec))
    except SynthesisError:
        return None
