"""Work items executed inside engine worker processes.

Everything here must be picklable and importable at module level (the
pool pickles the *function reference* plus its arguments).  Results cross
the process boundary as plain JSON-able dicts in the shared wire schema
(:mod:`repro.engine.wire`) — the same payloads the
:class:`~repro.engine.cache.ResultCache` stores, so a worker result can
be written to the cache verbatim and a cache hit decodes through the
same path as a pool result.

SAT outcomes additionally carry a compact *spec snapshot* (truth-table
and don't-care bits), which is what lets ``janus cache verify`` replay a
stored assignment against the function it claims to realize without any
out-of-band information.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import SynthesisError
from repro.core.bounds import UB_METHODS, BoundResult
from repro.core.janus import (
    IncrementalProber,
    JanusOptions,
    LmOutcome,
    solve_lm,
)
from repro.core.target import TargetSpec
from repro.engine.wire import (
    assignment_from_wire,
    assignment_to_wire,
    attempt_from_wire,
    attempt_to_wire,
    spec_snapshot,
)
from repro.lattice.assignment import LatticeAssignment

__all__ = [
    "LmRequest",
    "run_lm_request",
    "run_bound_request",
    "outcome_payload",
    "outcome_from_payload",
    "bound_payload",
    "bound_from_payload",
]


@dataclass(frozen=True)
class LmRequest:
    """One LM probe: everything a worker needs, budgets included."""

    spec: TargetSpec
    rows: int
    cols: int
    options: JanusOptions
    backend: str = "eager"  # "eager" (paper encoding) | "lazy" (CEGAR)
    # Route through the worker's process-local IncrementalProber so
    # probes of the same instance landing on the same worker share one
    # live solver (learned clauses, memo, domination pruning).  Answers
    # are byte-identical to the one-shot path either way.
    incremental: bool = True


# One prober per worker process: pool workers are long-lived, so probes
# of the same instance that land on the same worker reuse its solver
# state.  Bounded by the prober's own instance LRU.
_WORKER_PROBER: Optional[IncrementalProber] = None


def _worker_prober() -> IncrementalProber:
    global _WORKER_PROBER
    if _WORKER_PROBER is None:
        _WORKER_PROBER = IncrementalProber()
    return _WORKER_PROBER


def _assignment_payload(
    assignment: Optional[LatticeAssignment],
) -> Optional[dict]:
    return assignment_to_wire(assignment)


def _assignment_from_payload(
    payload: Optional[dict], spec: TargetSpec
) -> Optional[LatticeAssignment]:
    return assignment_from_wire(payload, spec.num_inputs, spec.name_list())


def outcome_payload(
    outcome: LmOutcome, spec: Optional[TargetSpec] = None
) -> dict:
    """Serialize an :class:`LmOutcome` for IPC and the result cache.

    When ``spec`` is given and the outcome carries an assignment, a spec
    snapshot rides along so the cache entry is self-verifying.
    """
    payload = {
        "status": outcome.status,
        "assignment": assignment_to_wire(outcome.assignment),
        "attempt": attempt_to_wire(outcome.attempt),
    }
    if spec is not None and outcome.assignment is not None:
        payload["spec"] = spec_snapshot(spec)
    return payload


def outcome_from_payload(
    payload: dict, spec: TargetSpec, cached: bool = False
) -> LmOutcome:
    """Rebuild an :class:`LmOutcome`; names come from the *current* spec."""
    attempt = attempt_from_wire(payload["attempt"], cached=cached)
    assignment = _assignment_from_payload(payload["assignment"], spec)
    return LmOutcome(payload["status"], assignment, attempt)


def run_lm_request(request: LmRequest) -> dict:
    """Pool entry point: decide one LM instance, return a payload."""
    if request.backend == "lazy":
        from repro.core.cegar import solve_lm_lazy

        outcome = solve_lm_lazy(
            request.spec, request.rows, request.cols, request.options
        )
    elif request.incremental:
        outcome = _worker_prober().solve(
            request.spec, request.rows, request.cols, request.options
        )
    else:
        outcome = solve_lm(
            request.spec, request.rows, request.cols, request.options
        )
    return outcome_payload(outcome, spec=request.spec)


def bound_payload(bound: BoundResult) -> dict:
    return {
        "method": bound.method,
        "assignment": assignment_to_wire(bound.assignment),
    }


def bound_from_payload(payload: dict, spec: TargetSpec) -> BoundResult:
    return BoundResult(
        payload["method"],
        _assignment_from_payload(payload["assignment"], spec),
    )


def run_bound_request(args: tuple[TargetSpec, str]) -> Optional[dict]:
    """Pool entry point: one upper-bound construction, or None if it
    does not apply to this target (mirrors the serial ``try/except``)."""
    spec, method = args
    try:
        return bound_payload(UB_METHODS[method](spec))
    except SynthesisError:
        return None
