"""Cache eviction policy: age- and size-bounded GC plus temp sweeping.

A shared cache directory grows without bound as suites, options and key
versions churn; this module keeps it bounded without ever risking a
wrong answer — entries are immutable and content-addressed, so evicting
one only costs a future recomputation.

Policy (applied in this order by :func:`gc_cache`):

1. **Temp sweep** — ``.tmp-*.json`` files older than ``tmp_grace``
   seconds are leftovers from crashed writers (a live writer holds its
   temp for milliseconds) and are deleted.
2. **Age bound** — entries whose mtime is older than ``max_age`` seconds
   are evicted.  mtime approximates last *write*; entries rewritten by
   concurrent runs stay fresh.
3. **Size bound** — if the surviving entries still exceed ``max_bytes``,
   the oldest entries (by mtime) are evicted until the total fits.
4. **Dir pruning** — shard directories left empty are removed.

All deletions tolerate concurrent access: a file unlinked by another
process, or a directory repopulated mid-prune, is skipped silently.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Optional

from repro.engine.cache import ResultCache

__all__ = ["CacheStats", "GcReport", "cache_stats", "gc_cache"]


@dataclass
class CacheStats:
    """Snapshot of a cache directory's contents."""

    entries: int = 0
    entry_bytes: int = 0
    temp_files: int = 0
    temp_bytes: int = 0
    oldest_age: float = 0.0  # seconds since the oldest entry's mtime
    newest_age: float = 0.0


@dataclass
class GcReport:
    """What one :func:`gc_cache` pass removed."""

    evicted_by_age: int = 0
    evicted_by_size: int = 0
    evicted_bytes: int = 0
    swept_temps: int = 0
    pruned_dirs: int = 0

    @property
    def evicted(self) -> int:
        return self.evicted_by_age + self.evicted_by_size


def _stat_entries(cache: ResultCache) -> list[tuple[float, int, "os.PathLike"]]:
    """(mtime, size, path) for every real entry that still exists."""
    out = []
    for path in cache.iter_entries():
        try:
            st = path.stat()
        except OSError:
            continue
        out.append((st.st_mtime, st.st_size, path))
    return out


def cache_stats(cache: ResultCache, now: Optional[float] = None) -> CacheStats:
    """Count entries, bytes and leftover temps in ``cache``."""
    now = time.time() if now is None else now
    stats = CacheStats()
    entries = _stat_entries(cache)
    stats.entries = len(entries)
    stats.entry_bytes = sum(size for _, size, _ in entries)
    if entries:
        mtimes = [mtime for mtime, _, _ in entries]
        stats.oldest_age = max(0.0, now - min(mtimes))
        stats.newest_age = max(0.0, now - max(mtimes))
    for path in cache.iter_temps():
        try:
            st = path.stat()
        except OSError:
            continue
        stats.temp_files += 1
        stats.temp_bytes += st.st_size
    return stats


def _unlink(path) -> bool:
    try:
        path.unlink()
        return True
    except OSError:
        return False


def gc_cache(
    cache: ResultCache,
    max_age: Optional[float] = None,
    max_bytes: Optional[int] = None,
    tmp_grace: float = 3600.0,
    now: Optional[float] = None,
) -> GcReport:
    """One GC pass over ``cache``; bounds of None mean "no bound".

    ``max_age`` and ``tmp_grace`` are in seconds, ``max_bytes`` in bytes.
    Returns a :class:`GcReport` of everything removed.
    """
    now = time.time() if now is None else now
    report = GcReport()

    for path in cache.iter_temps():
        try:
            age = now - path.stat().st_mtime
        except OSError:
            continue
        if age >= tmp_grace and _unlink(path):
            report.swept_temps += 1

    entries = _stat_entries(cache)
    survivors = []
    for mtime, size, path in entries:
        if max_age is not None and now - mtime >= max_age:
            if _unlink(path):
                report.evicted_by_age += 1
                report.evicted_bytes += size
                continue
        survivors.append((mtime, size, path))

    if max_bytes is not None:
        total = sum(size for _, size, _ in survivors)
        survivors.sort()  # oldest mtime first
        for mtime, size, path in survivors:
            if total <= max_bytes:
                break
            if _unlink(path):
                report.evicted_by_size += 1
                report.evicted_bytes += size
                total -= size

    for shard in cache.root.iterdir():
        if not shard.is_dir():
            continue
        try:
            next(shard.iterdir())
        except StopIteration:
            try:
                shard.rmdir()
                report.pruned_dirs += 1
            except OSError:
                pass
        except OSError:
            pass

    return report
