"""In-memory LRU layer above the on-disk :class:`ResultCache`.

The persistent cache answers repeats across runs; within one run, hot
repeats (the DS bound re-probing a shape the driver already decided,
identical instances inside one suite, speculative prefetches landing on
shapes a later step asks for) still pay a file open + JSON parse per
hit.  :class:`LruCache` keeps the most recently used payloads in
process memory so an intra-run repeat costs a dict lookup.

The layer is transparent: payloads are the exact dicts the disk cache
stores (content-addressed by the same keys), so serving from memory can
never change an answer — only skip re-reading it.  Entries are treated
as immutable once stored; callers must not mutate a returned payload.

Accounting lives in ``EngineStats.memory_hits`` / ``memory_misses`` and
on the event channel as ``CacheEvent(layer="memory")``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

__all__ = ["LruCache"]

DEFAULT_MEMORY_ENTRIES = 512


class LruCache:
    """A bounded mapping of cache keys to payload dicts, LRU-evicted.

    Thread-safe: a session pool shares one engine-level LRU across the
    server's worker threads, and even a ``get`` mutates recency order,
    so every operation takes the cache lock.
    """

    __slots__ = (
        "capacity",
        "_lock",
        "_data",
        "hits",
        "misses",
        "evictions",
    )

    def __init__(self, capacity: int = DEFAULT_MEMORY_ENTRIES) -> None:
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._data: OrderedDict[str, dict] = OrderedDict()  # guarded-by: _lock
        self.hits = 0  # guarded-by: _lock
        self.misses = 0  # guarded-by: _lock
        self.evictions = 0  # guarded-by: _lock

    def get(self, key: str) -> Optional[dict]:
        with self._lock:
            payload = self._data.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: str, payload: dict) -> None:
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = payload
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"LruCache({len(self._data)}/{self.capacity} entries, "
                f"hits={self.hits}, misses={self.misses})"
            )
