"""Shared wire schema primitives: assignments, attempts, spec snapshots.

One serialization, three consumers.  The payload forms defined here are
used verbatim by

* :mod:`repro.engine.worker` — results crossing the process-pool
  boundary,
* :mod:`repro.engine.cache` / :mod:`repro.engine.suite` — payloads
  persisted in the on-disk result cache, and
* :mod:`repro.api.schema` — the public ``SynthesisResponse`` JSON wire
  format (:mod:`repro.server` serves exactly these shapes over HTTP).

Keeping them in one module means a worker result can be written to the
cache verbatim, a cache hit decodes through the same path as a pool
result, and an API response embeds the same attempt/assignment objects a
cache entry stores — there is no second schema to drift.

The *spec snapshot* is deliberately smaller than a full
:class:`~repro.core.target.TargetSpec`: just the truth-table bits (and
don't-cares) needed to replay a stored assignment against the function
it claims to realize.  ``janus cache verify`` uses it to audit a cache
without any out-of-band information.
"""

from __future__ import annotations

from typing import Optional

from repro.core.janus import LmAttempt
from repro.core.target import TargetSpec
from repro.lattice.assignment import Entry, LatticeAssignment
from repro.sat.solver import SolverConfig

__all__ = [
    "assignment_to_wire",
    "assignment_from_wire",
    "attempt_to_wire",
    "attempt_from_wire",
    "solver_config_to_wire",
    "solver_config_from_wire",
    "spec_snapshot",
    "snapshot_tables",
]


# ------------------------------------------------------------- assignments
def assignment_to_wire(
    assignment: Optional[LatticeAssignment],
) -> Optional[dict]:
    """``{"rows", "cols", "entries": [[var|null, positive], ...]}``."""
    if assignment is None:
        return None
    return {
        "rows": assignment.rows,
        "cols": assignment.cols,
        "entries": [[e.var, e.positive] for e in assignment.entries],
    }


def assignment_from_wire(
    payload: Optional[dict],
    num_inputs: int,
    names: Optional[list] = None,
) -> Optional[LatticeAssignment]:
    """Rebuild an assignment; ``names`` are cosmetic and caller-supplied."""
    if payload is None:
        return None
    entries = [
        Entry.lit(var, positive) if var is not None else Entry.const(positive)
        for var, positive in payload["entries"]
    ]
    return LatticeAssignment(
        payload["rows"], payload["cols"], entries, num_inputs, names
    )


# ---------------------------------------------------------------- attempts
def attempt_to_wire(attempt: LmAttempt) -> dict:
    return {
        "rows": attempt.rows,
        "cols": attempt.cols,
        "status": attempt.status,
        "side": attempt.side,
        "complexity": attempt.complexity,
        "conflicts": attempt.conflicts,
        "wall_time": attempt.wall_time,
        "propagations": attempt.propagations,
        "restarts": attempt.restarts,
        "reused": attempt.reused,
        "pruned": attempt.pruned,
        "core": attempt.core,
    }


def attempt_from_wire(payload: dict, cached: bool = False) -> LmAttempt:
    # The solver-reuse fields were added in schema revision 4; entries
    # written by older code simply lack them, so they default off.
    return LmAttempt(
        rows=payload["rows"],
        cols=payload["cols"],
        status=payload["status"],
        side=payload["side"],
        complexity=payload["complexity"],
        conflicts=payload["conflicts"],
        wall_time=payload["wall_time"],
        cached=cached,
        propagations=payload.get("propagations", 0),
        restarts=payload.get("restarts", 0),
        reused=payload.get("reused", False),
        pruned=payload.get("pruned", False),
        # revision 5: which propagation core served the probe.  Older
        # entries predate the native kernel, so they were pure by
        # construction.
        core=payload.get("core", "pure"),
    )


# ------------------------------------------------------------ solver config
def solver_config_to_wire(
    config: Optional[SolverConfig],
) -> Optional[dict]:
    """The ``solver_config`` wire block; ``None`` means "default config".

    The default config is always serialized as ``null`` (never as an
    explicit field dict), so a request built before SolverConfig existed
    and one carrying the explicit default are byte-identical on the wire
    — the back-compat rule documented in ``docs/wire-schema.md``.
    """
    if config is None or config == SolverConfig():
        return None
    return {
        "restart_strategy": config.restart_strategy,
        "restart_base": config.restart_base,
        "restart_growth": config.restart_growth,
        "var_decay": config.var_decay,
        "clause_decay": config.clause_decay,
        "phase_saving": config.phase_saving,
        "reduce_base": config.reduce_base,
        "reduce_growth": config.reduce_growth,
        "max_conflicts": config.max_conflicts,
        "max_time": config.max_time,
    }


def solver_config_from_wire(payload: Optional[dict]) -> SolverConfig:
    """Rebuild a :class:`SolverConfig`; absent/null payload ⇒ default.

    Unknown fields are rejected (the schema layer turns the resulting
    ``TypeError``/``SolverError`` into a :class:`ValidationError`);
    absent fields take their defaults, so old payloads stay readable as
    new knobs are added.
    """
    if payload is None:
        return SolverConfig()
    return SolverConfig(**payload)


# ----------------------------------------------------------- spec snapshots
def _tt_hex(tt) -> str:
    """Truth-table bits as hex (packed little-endian by minterm index)."""
    import numpy as np

    return np.packbits(tt.values, bitorder="little").tobytes().hex()


def _tt_from_hex(hexbits: str, num_vars: int):
    import numpy as np

    from repro.boolf.truthtable import TruthTable

    raw = np.frombuffer(bytes.fromhex(hexbits), dtype=np.uint8)
    bits = np.unpackbits(raw, bitorder="little")[: 1 << num_vars]
    return TruthTable(bits.astype(bool), num_vars)


def spec_snapshot(spec: TargetSpec) -> dict:
    """The minimum needed to *re-verify* a stored assignment: the onset
    (and optional don't-care set) of the target function."""
    return {
        "num_vars": spec.num_inputs,
        "tt": _tt_hex(spec.tt),
        "dc": _tt_hex(spec.dc) if spec.dc is not None else None,
    }


def snapshot_tables(snapshot: dict):
    """``(onset, upper)`` truth tables from a spec snapshot: a replayed
    assignment is correct when onset <= realized <= upper."""
    num_vars = snapshot["num_vars"]
    onset = _tt_from_hex(snapshot["tt"], num_vars)
    if snapshot.get("dc"):
        upper = onset | _tt_from_hex(snapshot["dc"], num_vars)
    else:
        upper = onset
    return onset, upper
