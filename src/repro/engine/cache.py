"""Persistent on-disk result cache for LM probes and suite results.

Layout: one JSON file per result under ``<root>/<key[:2]>/<key>.json``,
where ``key`` is the SHA-256 from :mod:`repro.engine.signature`.  The
two-level fan-out keeps directories small when millions of instances
accumulate.  Writes go through a temp file + :func:`os.replace`, so a
cache directory shared by many worker processes (or many concurrent
runs) never serves a torn file; the worst concurrent case is two workers
computing the same result and one rename winning, which is harmless.

A writer that dies between ``mkstemp`` and ``os.replace`` leaves a
``.tmp-*.json`` file behind.  Those are never entries: ``__len__`` and
``clear`` only see real ``<sha256>.json`` files, and
:func:`repro.engine.gc.gc_cache` sweeps stale temps.

Cache *writes* are best-effort: a read-only or full cache directory
degrades the cache to read-only/uncached operation with a single
warning instead of aborting the synthesis run that tried to populate it.

Only *decisive* outcomes are stored: ``sat``/``unsat`` always, and
``unknown`` only when it was produced by a deterministic conflict budget
(no wall-clock limit), since a time-based unknown on one machine says
nothing about another.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import warnings
from pathlib import Path
from typing import Iterator, Optional, Union

from repro.errors import CacheError

__all__ = ["ResultCache"]

_FORMAT = 1

#: How often put() re-creates a shard directory a concurrent gc pass
#: keeps pruning out from under it before giving up.
_PUT_ATTEMPTS = 8

# Real entries are exactly "<64 hex chars>.json"; anything else in a
# shard directory (in-flight ".tmp-*.json" files from other writers,
# stray droppings from crashed ones) is not part of the cache contents.
_ENTRY_RE = re.compile(r"\A[0-9a-f]{64}\.json\Z")
_TEMP_RE = re.compile(r"\A\.tmp-.*\.json\Z")


class ResultCache:
    """A directory of JSON result payloads keyed by content hash."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._writable = True  # flips off after the first failed write
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CacheError(f"cannot use cache directory {root!r}: {exc}") from exc

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The stored payload, or None on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
            return None
        return payload

    def put(self, key: str, payload: dict) -> bool:
        """Atomically store a payload (last writer wins).

        Returns True when the entry was written.  An unwritable cache
        (read-only directory, disk full, quota) must never abort the
        synthesis run feeding it: the first :class:`OSError` emits one
        warning and turns further writes off — reads keep working, so a
        read-only warm cache still serves hits.
        """
        if not self._writable:
            return False
        path = self._path(key)
        record = dict(payload)
        record["format"] = _FORMAT
        # Retry loop: a concurrent gc pass may prune the (momentarily
        # empty) shard directory between our mkdir and mkstemp/replace.
        # That FileNotFoundError is a race, not an unwritable cache —
        # recreate the directory and go again.  The vulnerable window is
        # microseconds wide, so losing it _PUT_ATTEMPTS times in a row
        # means something other than gc is deleting the tree.
        for attempt in range(_PUT_ATTEMPTS):
            tmp = None
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp = tempfile.mkstemp(
                    dir=path.parent, prefix=".tmp-", suffix=".json"
                )
                with os.fdopen(fd, "w", encoding="utf-8") as fh:
                    json.dump(record, fh, separators=(",", ":"))
                os.replace(tmp, path)
                return True
            # FileExistsError is the same race seen from the other side:
            # mkdir(exist_ok=True) lost a create-then-prune TOCTOU inside
            # pathlib (os.mkdir hit EEXIST, gc pruned the dir before the
            # is_dir() recheck, so pathlib re-raised).
            except (FileNotFoundError, FileExistsError):
                if attempt < _PUT_ATTEMPTS - 1:
                    continue
                self._writable = False
                warnings.warn(
                    f"cache write to {path} failed (shard directory kept "
                    "vanishing); continuing without caching new results",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return False
            except OSError as exc:
                self._writable = False
                warnings.warn(
                    f"cache write to {path} failed ({exc}); continuing "
                    "without caching new results",
                    RuntimeWarning,
                    stacklevel=2,
                )
                return False
            finally:
                if tmp is not None and os.path.exists(tmp):
                    try:
                        os.unlink(tmp)
                    except OSError:
                        pass
        return False  # unreachable; keeps the loop's contract explicit

    def _scan_shards(self, pattern: "re.Pattern") -> Iterator[Path]:
        """Files matching ``pattern`` across every shard directory.

        Listing is snapshot-per-shard via ``os.scandir`` with vanishing
        directories tolerated: a concurrent gc pass in another process
        may prune an (momentarily empty) shard between our listing of
        the root and our scan of the shard — that is a shard with no
        entries, not an error.  (``Path.glob`` raises on exactly this
        race, which the cross-process stress suite reproduces.)
        """
        try:
            with os.scandir(self.root) as root_it:
                shards = [entry.path for entry in root_it if entry.is_dir()]
        except OSError:
            return
        for shard in shards:
            try:
                with os.scandir(shard) as shard_it:
                    names = [
                        (entry.name, entry.path) for entry in shard_it
                    ]
            except OSError:
                continue  # shard pruned by a concurrent gc pass
            for name, path in names:
                if pattern.match(name):
                    yield Path(path)

    def iter_entries(self) -> Iterator[Path]:
        """Every real ``<sha256>.json`` entry file (temps excluded)."""
        return self._scan_shards(_ENTRY_RE)

    def iter_temps(self) -> Iterator[Path]:
        """Leftover ``.tmp-*.json`` files from in-flight/crashed writers."""
        return self._scan_shards(_TEMP_RE)

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_entries())

    def clear(self) -> int:
        """Delete every stored result; returns the number removed.

        Temp files are left for :func:`repro.engine.gc.gc_cache`: an
        in-flight writer may still rename its temp into place, and
        unlinking it here would not stop that rename anyway.
        """
        removed = 0
        for path in self.iter_entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r})"
