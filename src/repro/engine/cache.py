"""Persistent on-disk result cache for LM probes.

Layout: one JSON file per result under ``<root>/<key[:2]>/<key>.json``,
where ``key`` is the SHA-256 from :mod:`repro.engine.signature`.  The
two-level fan-out keeps directories small when millions of instances
accumulate.  Writes go through a temp file + :func:`os.replace`, so a
cache directory shared by many worker processes (or many concurrent
runs) never serves a torn file; the worst concurrent case is two workers
computing the same result and one rename winning, which is harmless.

Only *decisive* outcomes are stored: ``sat``/``unsat`` always, and
``unknown`` only when it was produced by a deterministic conflict budget
(no wall-clock limit), since a time-based unknown on one machine says
nothing about another.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional, Union

from repro.errors import CacheError

__all__ = ["ResultCache"]

_FORMAT = 1


class ResultCache:
    """A directory of JSON result payloads keyed by content hash."""

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise CacheError(f"cannot use cache directory {root!r}: {exc}") from exc

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[dict]:
        """The stored payload, or None on miss/corruption."""
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                payload = json.load(fh)
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("format") != _FORMAT:
            return None
        return payload

    def put(self, key: str, payload: dict) -> None:
        """Atomically store a payload (last writer wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = dict(payload)
        record["format"] = _FORMAT
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(record, fh, separators=(",", ":"))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __contains__(self, key: str) -> bool:
        return self._path(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every stored result; returns the number removed."""
        removed = 0
        for path in self.root.glob("*/*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def __repr__(self) -> str:
        return f"ResultCache({str(self.root)!r})"
