"""Structured progress events emitted by the synthesis engine.

The engine used to expose progress only as an :class:`EngineStats`
snapshot read after the fact.  Events turn that into a live channel: a
caller registers a callback (``ParallelEngine(events=...)`` or
``repro.api.Session(events=...)``) and receives one frozen dataclass per
occurrence, in emission order, on the calling thread.

Event types:

* :class:`ProbeStarted` / :class:`ProbeFinished` — one LM probe's
  lifecycle.  ``speculative=True`` marks prefetches for a possible next
  dichotomic step; ``cached=True`` on the finish marks an answer served
  without solving.
* :class:`BoundComputed` — one constructive upper bound (method, shape,
  size).
* :class:`CacheEvent` — one cache lookup: ``layer`` is ``"memory"``
  (the in-process LRU), ``"disk"`` (the persistent
  :class:`~repro.engine.cache.ResultCache`) or ``"suite"`` (whole-result
  records); ``hit`` says whether it answered.
* :class:`SynthesisStarted` / :class:`SynthesisFinished` — one whole
  JANUS run through the engine (``from_cache=True`` when the suite layer
  answered it).

Callbacks must be cheap and must not raise; a raising callback is
disabled after the first error rather than corrupting the search (a
progress bar bug must never change a synthesis result).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "EngineEvent",
    "ProbeStarted",
    "ProbeFinished",
    "BoundComputed",
    "CacheEvent",
    "SynthesisStarted",
    "SynthesisFinished",
    "EventEmitter",
    "EVENT_KINDS",
    "event_to_wire",
    "event_from_wire",
]


@dataclass(frozen=True)
class EngineEvent:
    """Base class for every event on the channel."""

    name: str  # target function's display name


@dataclass(frozen=True)
class ProbeStarted(EngineEvent):
    rows: int
    cols: int
    speculative: bool = False


@dataclass(frozen=True)
class ProbeFinished(EngineEvent):
    rows: int
    cols: int
    status: str  # "sat" | "unsat" | "unknown" | "structural" | "skipped"
    conflicts: int = 0
    wall_time: float = 0.0
    cached: bool = False
    side: Optional[str] = None


@dataclass(frozen=True)
class BoundComputed(EngineEvent):
    method: str
    rows: int
    cols: int
    size: int


@dataclass(frozen=True)
class CacheEvent(EngineEvent):
    layer: str  # "memory" | "disk" | "suite"
    hit: bool
    key: str = ""


@dataclass(frozen=True)
class SynthesisStarted(EngineEvent):
    backend: str = "janus"


@dataclass(frozen=True)
class SynthesisFinished(EngineEvent):
    rows: int
    cols: int
    size: int
    wall_time: float
    from_cache: bool = False


class EventEmitter:
    """Fan events out to zero or more callbacks, defensively.

    ``None`` callbacks are ignored at registration.  A callback that
    raises is dropped (with its error noted once) instead of propagating
    into the search loop.
    """

    __slots__ = ("_callbacks",)

    def __init__(
        self, callback: Optional[Callable[[EngineEvent], None]] = None
    ) -> None:
        self._callbacks: list[Callable[[EngineEvent], None]] = []
        if callback is not None:
            self._callbacks.append(callback)

    def subscribe(self, callback: Callable[[EngineEvent], None]) -> None:
        if callback is not None:
            self._callbacks.append(callback)

    def unsubscribe(self, callback: Callable[[EngineEvent], None]) -> None:
        """Remove a previously subscribed callback (no-op if absent).

        Needed by callers that attach a short-lived listener — the HTTP
        server's per-job event collector subscribes for one batch job and
        detaches when the job finishes, so a long-lived engine does not
        accumulate dead callbacks.
        """
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def __bool__(self) -> bool:
        return bool(self._callbacks)

    def emit(self, event: EngineEvent) -> None:
        for callback in list(self._callbacks):
            try:
                callback(event)
            # janalyze: allow-broad-except a raising progress callback is
            # disabled and reported; it must never corrupt the search
            except Exception:
                import warnings

                self._callbacks.remove(callback)
                warnings.warn(
                    f"event callback {callback!r} raised and was disabled",
                    RuntimeWarning,
                    stacklevel=2,
                )


# ------------------------------------------------------------------ wire form
#: Wire tag <-> event class.  The tag travels as the ``"event"`` field of
#: the JSON form served by ``GET /v1/events/<job_id>``; every other field
#: is the dataclass field of the same name.
EVENT_KINDS: dict[str, type] = {
    "probe_started": ProbeStarted,
    "probe_finished": ProbeFinished,
    "bound_computed": BoundComputed,
    "cache": CacheEvent,
    "synthesis_started": SynthesisStarted,
    "synthesis_finished": SynthesisFinished,
}

_KIND_BY_TYPE = {cls: kind for kind, cls in EVENT_KINDS.items()}


def event_to_wire(event: EngineEvent) -> dict:
    """JSON-safe dict form of an event: ``{"event": tag, ...fields}``.

    Events cross the HTTP job boundary in this form; the tag keys
    :data:`EVENT_KINDS` so a reader can rebuild the dataclass with
    :func:`event_from_wire`.
    """
    import dataclasses

    kind = _KIND_BY_TYPE.get(type(event))
    if kind is None:
        raise TypeError(f"not a wire-serializable event: {event!r}")
    wire = dataclasses.asdict(event)
    wire["event"] = kind
    return wire


def event_from_wire(wire: dict) -> EngineEvent:
    """Rebuild the frozen event dataclass a wire dict describes."""
    cls = EVENT_KINDS.get(wire.get("event"))
    if cls is None:
        raise ValueError(f"unknown event kind {wire.get('event')!r}")
    fields = {k: v for k, v in wire.items() if k != "event"}
    return cls(**fields)
