"""Structured progress events emitted by the synthesis engine.

The engine used to expose progress only as an :class:`EngineStats`
snapshot read after the fact.  Events turn that into a live channel: a
caller registers a callback (``ParallelEngine(events=...)`` or
``repro.api.Session(events=...)``) and receives one frozen dataclass per
occurrence, in emission order, on the calling thread.

Event types:

* :class:`ProbeStarted` / :class:`ProbeFinished` — one LM probe's
  lifecycle.  ``speculative=True`` marks prefetches for a possible next
  dichotomic step; ``cached=True`` on the finish marks an answer served
  without solving.
* :class:`BoundComputed` — one constructive upper bound (method, shape,
  size).
* :class:`CacheEvent` — one cache lookup: ``layer`` is ``"memory"``
  (the in-process LRU), ``"disk"`` (the persistent
  :class:`~repro.engine.cache.ResultCache`) or ``"suite"`` (whole-result
  records); ``hit`` says whether it answered.
* :class:`SynthesisStarted` / :class:`SynthesisFinished` — one whole
  JANUS run through the engine (``from_cache=True`` when the suite layer
  answered it).

Callbacks must be cheap and must not raise; a raising callback is
disabled after the first error rather than corrupting the search (a
progress bar bug must never change a synthesis result).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

__all__ = [
    "EngineEvent",
    "ProbeStarted",
    "ProbeFinished",
    "BoundComputed",
    "CacheEvent",
    "SynthesisStarted",
    "SynthesisFinished",
    "EventEmitter",
]


@dataclass(frozen=True)
class EngineEvent:
    """Base class for every event on the channel."""

    name: str  # target function's display name


@dataclass(frozen=True)
class ProbeStarted(EngineEvent):
    rows: int
    cols: int
    speculative: bool = False


@dataclass(frozen=True)
class ProbeFinished(EngineEvent):
    rows: int
    cols: int
    status: str  # "sat" | "unsat" | "unknown" | "structural" | "skipped"
    conflicts: int = 0
    wall_time: float = 0.0
    cached: bool = False
    side: Optional[str] = None


@dataclass(frozen=True)
class BoundComputed(EngineEvent):
    method: str
    rows: int
    cols: int
    size: int


@dataclass(frozen=True)
class CacheEvent(EngineEvent):
    layer: str  # "memory" | "disk" | "suite"
    hit: bool
    key: str = ""


@dataclass(frozen=True)
class SynthesisStarted(EngineEvent):
    backend: str = "janus"


@dataclass(frozen=True)
class SynthesisFinished(EngineEvent):
    rows: int
    cols: int
    size: int
    wall_time: float
    from_cache: bool = False


class EventEmitter:
    """Fan events out to zero or more callbacks, defensively.

    ``None`` callbacks are ignored at registration.  A callback that
    raises is dropped (with its error noted once) instead of propagating
    into the search loop.
    """

    __slots__ = ("_callbacks",)

    def __init__(
        self, callback: Optional[Callable[[EngineEvent], None]] = None
    ) -> None:
        self._callbacks: list[Callable[[EngineEvent], None]] = []
        if callback is not None:
            self._callbacks.append(callback)

    def subscribe(self, callback: Callable[[EngineEvent], None]) -> None:
        if callback is not None:
            self._callbacks.append(callback)

    def __bool__(self) -> bool:
        return bool(self._callbacks)

    def emit(self, event: EngineEvent) -> None:
        for callback in list(self._callbacks):
            try:
                callback(event)
            except Exception:
                import warnings

                self._callbacks.remove(callback)
                warnings.warn(
                    f"event callback {callback!r} raised and was disabled",
                    RuntimeWarning,
                    stacklevel=2,
                )
