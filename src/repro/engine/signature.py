"""Canonical function signatures and cache keys.

The persistent result cache must recognize "the same LM instance" across
runs, processes and machines.  Two probes are the same instance exactly
when they agree on

* the target function — onset truth table plus don't-care set,
* the covers JANUS encodes from (the minimized ISOP and its dual; these
  are derived deterministically from the table, but a caller may supply
  custom covers, so they are hashed rather than assumed),
* the lattice shape ``rows x cols``, and
* every option that can change the probe's answer (SAT budgets, encoding
  knobs, verification/trim flags).

Variable *names* and the target's display name are deliberately excluded:
they are cosmetic and must not fragment the cache.  Keys are SHA-256 over
a canonical JSON rendering, so they are stable across Python versions and
usable as filenames.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Optional

from repro.core.janus import JanusOptions
from repro.core.target import TargetSpec
from repro.engine.wire import _tt_hex  # shared bit packing with spec snapshots

__all__ = [
    "spec_fingerprint",
    "options_fingerprint",
    "lm_cache_key",
]

_KEY_VERSION = 1  # bump when the encoding or solver behavior changes


def spec_fingerprint(spec: TargetSpec) -> dict:
    """Canonical, JSON-able identity of a synthesis target."""
    return {
        "num_vars": spec.num_inputs,
        "tt": _tt_hex(spec.tt),
        "dc": _tt_hex(spec.dc) if spec.dc is not None else None,
        "isop": [[c.pos, c.neg] for c in spec.isop.cubes],
        "dual_isop": [[c.pos, c.neg] for c in spec.dual_isop.cubes],
    }


def options_fingerprint(options: JanusOptions) -> dict:
    """Every option that can influence an LM probe's outcome."""
    fp = asdict(options)  # recurses into EncodeOptions
    # ub_methods / ds_depth steer the *driver*, not a single LM probe, but
    # they are cheap to include and make the key reusable for whole-run
    # caching later; keep them.
    fp["ub_methods"] = list(fp["ub_methods"])
    fp["sides"] = list(fp["sides"])
    return fp


def lm_cache_key(
    spec: TargetSpec,
    rows: int,
    cols: int,
    options: JanusOptions,
    backend: str = "eager",
) -> str:
    """Stable key for one LM probe under one option set."""
    payload = {
        "v": _KEY_VERSION,
        "backend": backend,
        "spec": spec_fingerprint(spec),
        "rows": rows,
        "cols": cols,
        "options": options_fingerprint(options),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def describe_key(key: str) -> Optional[str]:
    """Short display form of a cache key (for logs and CLI output)."""
    return key[:12] if key else None
