"""Canonical function signatures and cache keys.

The persistent result cache must recognize "the same LM instance" across
runs, processes and machines.  Two probes are the same instance exactly
when they agree on

* the target function — onset truth table plus don't-care set,
* the covers JANUS encodes from (the minimized ISOP and its dual; these
  are derived deterministically from the table, but a caller may supply
  custom covers, so they are hashed rather than assumed),
* the lattice shape ``rows x cols``, and
* every option that can change the probe's answer (SAT budgets, encoding
  knobs, verification/trim flags).

Variable *names* and the target's display name are deliberately excluded:
they are cosmetic and must not fragment the cache.  Keys are SHA-256 over
a canonical JSON rendering, so they are stable across Python versions and
usable as filenames.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from typing import Optional

from repro.core.janus import JanusOptions
from repro.core.target import TargetSpec
from repro.engine.wire import _tt_hex  # shared bit packing with spec snapshots

__all__ = [
    "spec_fingerprint",
    "options_fingerprint",
    "lm_cache_key",
    "InputTransform",
    "npn_canonical",
    "npn_alias_key",
]

# Bump when the encoding or solver behavior changes.  v2: the canonical
# ``solver_config`` block joined options_fingerprint, so differently
# tuned runs key differently (and pre-config cache entries are retired).
_KEY_VERSION = 2

# Exact canonicalization enumerates n! * 2^n input transforms; beyond
# this input count the enumeration costs more than a cache miss.
NPN_MAX_INPUTS = 6


def spec_fingerprint(spec: TargetSpec) -> dict:
    """Canonical, JSON-able identity of a synthesis target."""
    return {
        "num_vars": spec.num_inputs,
        "tt": _tt_hex(spec.tt),
        "dc": _tt_hex(spec.dc) if spec.dc is not None else None,
        "isop": [[c.pos, c.neg] for c in spec.isop.cubes],
        "dual_isop": [[c.pos, c.neg] for c in spec.dual_isop.cubes],
    }


def options_fingerprint(options: JanusOptions) -> dict:
    """Every option that can influence an LM probe's outcome."""
    fp = asdict(options)  # recurses into EncodeOptions and SolverConfig
    # ub_methods / ds_depth steer the *driver*, not a single LM probe, but
    # they are cheap to include and make the key reusable for whole-run
    # caching later; keep them.
    fp["ub_methods"] = list(fp["ub_methods"])
    fp["sides"] = list(fp["sides"])
    # The CDCL tuning block, under its wire-schema name: every
    # SolverConfig field participates in the key, so two differently
    # tuned runs can never collide in the probe/suite caches.
    fp["solver_config"] = fp.pop("solver")
    return fp


def lm_cache_key(
    spec: TargetSpec,
    rows: int,
    cols: int,
    options: JanusOptions,
    backend: str = "eager",
) -> str:
    """Stable key for one LM probe under one option set."""
    payload = {
        "v": _KEY_VERSION,
        "backend": backend,
        "spec": spec_fingerprint(spec),
        "rows": rows,
        "cols": cols,
        "options": options_fingerprint(options),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def describe_key(key: str) -> Optional[str]:
    """Short display form of a cache key (for logs and CLI output)."""
    return key[:12] if key else None


# ------------------------------------------------------ NPN-class aliasing
class InputTransform:
    """An input permutation plus per-input polarity flips.

    Acting on a function: ``(t . f)(y) = f(x)`` with
    ``x[i] = y[perm[i]] ^ bit(mask, i)`` — variable ``i`` of the original
    becomes variable ``perm[i]`` of the transformed function, negated
    when mask bit ``i`` is set.  Acting on a lattice assignment: the
    literal entry ``(i, pos)`` becomes ``(perm[i], pos ^ bit(mask, i))``
    and constants are untouched, which is exactly why this class of
    transforms (and not output complementation, whose effect on a
    lattice is the nontrivial duality theorem) is used for cache
    aliasing: an assignment realizing ``f`` converts to one realizing
    ``t . f`` by relabeling cells.
    """

    __slots__ = ("perm", "mask")

    def __init__(self, perm: tuple[int, ...], mask: int) -> None:
        self.perm = tuple(perm)
        self.mask = mask

    def __repr__(self) -> str:
        return f"InputTransform(perm={self.perm}, mask={self.mask:#x})"

    def apply_tt(self, tt):
        """Transform a :class:`~repro.boolf.truthtable.TruthTable`."""
        import numpy as np

        from repro.boolf.truthtable import TruthTable

        n = len(self.perm)
        y = np.arange(1 << n)
        x = np.zeros_like(y)
        for i, p in enumerate(self.perm):
            x |= ((y >> p) & 1) << i
        x ^= self.mask
        return TruthTable(tt.values[x], n)

    def apply_entry(self, var: Optional[int], positive: bool):
        """Transform one ``(var, positive)`` assignment entry."""
        if var is None:
            return None, positive
        return self.perm[var], positive ^ bool((self.mask >> var) & 1)

    def inverse(self) -> "InputTransform":
        n = len(self.perm)
        inv = [0] * n
        for i, p in enumerate(self.perm):
            inv[p] = i
        mask = 0
        for j in range(n):
            if (self.mask >> inv[j]) & 1:
                mask |= 1 << j
        return InputTransform(tuple(inv), mask)

    def compose(self, other: "InputTransform") -> "InputTransform":
        """``self . other``: apply ``other`` first, then ``self``.

        On entries: ``(self . other).apply_entry == self.apply_entry
        after other.apply_entry``.
        """
        perm = tuple(self.perm[p] for p in other.perm)
        mask = other.mask
        for i in range(len(perm)):
            if (self.mask >> other.perm[i]) & 1:
                mask ^= 1 << i
        return InputTransform(perm, mask)


def npn_canonical(spec: TargetSpec) -> Optional[tuple[dict, InputTransform]]:
    """Canonical representative of the spec's NP class, with the
    transform reaching it.

    Exhausts every input permutation and polarity pattern (``n! * 2^n``
    candidates, gated to ``n <= NPN_MAX_INPUTS``) and picks the
    lexicographically smallest ``(onset bits, don't-care bits)``
    rendering.  Returns ``(canonical fingerprint dict, t)`` with
    ``t . spec == canonical``, or ``None`` for inputs too wide to
    canonicalize.  Output complementation is deliberately excluded (see
    :class:`InputTransform`), so this is the NP subgroup of the NPN
    classification: equivalent benchmark functions that differ only by
    input renaming/negation share one canonical form.
    """
    import itertools

    import numpy as np

    n = spec.num_inputs
    if n > NPN_MAX_INPUTS:
        return None
    tt_vals = spec.tt.values
    dc_vals = spec.dc.values if spec.dc is not None else None
    y = np.arange(1 << n)
    best: Optional[tuple] = None
    best_t: Optional[InputTransform] = None
    for perm in itertools.permutations(range(n)):
        x_perm = np.zeros_like(y)
        for i, p in enumerate(perm):
            x_perm |= ((y >> p) & 1) << i
        for mask in range(1 << n):
            x = x_perm ^ mask
            key = (
                np.packbits(tt_vals[x], bitorder="little").tobytes(),
                np.packbits(dc_vals[x], bitorder="little").tobytes()
                if dc_vals is not None
                else b"",
                perm,
                mask,
            )
            if best is None or key < best:
                best = key
                best_t = InputTransform(perm, mask)
    assert best is not None and best_t is not None
    fingerprint = {
        "num_vars": n,
        "tt": best[0].hex(),
        "dc": best[1].hex() if best[1] else None,
    }
    return fingerprint, best_t


def npn_alias_key(
    spec: TargetSpec,
    options: JanusOptions,
    mode: str = "eager",
) -> Optional[tuple[str, InputTransform]]:
    """(alias cache key, transform-to-canonical) for suite-entry sharing
    across NP-equivalent specs, or ``None`` when not canonicalizable."""
    canonical = npn_canonical(spec)
    if canonical is None:
        return None
    fingerprint, transform = canonical
    payload = {
        "v": _KEY_VERSION,
        "kind": "npn-alias",
        "mode": mode,
        "spec": fingerprint,
        "options": options_fingerprint(options),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest(), transform
