"""Suite-level synthesis cache: whole results, not just probes.

The probe cache (:mod:`repro.engine.cache` keyed per LM instance) makes
a warm run skip SAT calls, but the driver still recomputes the
structural lower bound, the constructive upper bounds and the dichotomic
loop around those cached probes.  For whole-suite experiments (the
paper's Table II re-runs the same 48 functions under the same budgets)
that bookkeeping dominates a warm run.

This module persists complete :class:`~repro.core.janus.SynthesisResult`
records — assignment, bounds, the full attempt trace — keyed by the
spec+options fingerprint from :mod:`repro.engine.signature` (which
already folds in every driver option, ``ub_methods`` and ``ds_depth``
included, for exactly this purpose).  A warm hit rebuilds the result
without touching bounds code or the search loop: zero SAT calls *and*
zero upper-bound recomputations.

Keys are namespaced by *kind* (``synthesis`` here, ``bounds`` for the
benchmark harness's :class:`~repro.bench.runner.BoundsReport`) and by
engine *mode*: portfolio results may come from the CEGAR backend and
need not match the deterministic eager lattice, so they can never be
served to a deterministic run sharing the cache directory.

Restored attempts carry ``cached=True``; the assignment is rebuilt with
the *current* spec's variable names (names are cosmetic and excluded
from the key).
"""

from __future__ import annotations

import hashlib
import json
from typing import Optional

from repro.core.janus import JanusOptions, SynthesisResult
from repro.core.target import TargetSpec
from repro.engine.wire import (
    assignment_from_wire,
    assignment_to_wire,
    attempt_from_wire,
    attempt_to_wire,
    spec_snapshot,
)
from repro.engine.signature import options_fingerprint, spec_fingerprint

__all__ = [
    "suite_cache_key",
    "synthesis_payload",
    "synthesis_from_payload",
]

_SUITE_KEY_VERSION = 1


def suite_cache_key(
    spec: TargetSpec,
    options: JanusOptions,
    kind: str = "synthesis",
    mode: str = "eager",
) -> str:
    """Stable key for one whole-run record under one option set."""
    payload = {
        "v": _SUITE_KEY_VERSION,
        "kind": kind,
        "mode": mode,
        "spec": spec_fingerprint(spec),
        "options": options_fingerprint(options),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def synthesis_payload(result: SynthesisResult) -> dict:
    """Serialize a complete :class:`SynthesisResult` for the cache.

    Serialization delegates to the shared wire schema
    (:mod:`repro.engine.wire`), so suite entries, worker results and API
    responses all agree on the attempt/assignment shapes.  The spec
    snapshot makes the entry self-verifying for ``janus cache verify``.
    """
    return {
        "kind": "synthesis",
        "assignment": assignment_to_wire(result.assignment),
        "spec": spec_snapshot(result.spec),
        "lower_bound": result.lower_bound,
        "initial_upper_bound": result.initial_upper_bound,
        "upper_bounds": {
            k: [r, c] for k, (r, c) in result.upper_bounds.items()
        },
        "attempts": [attempt_to_wire(a) for a in result.attempts],
        "wall_time": result.wall_time,
        "method": result.method,
        "initial_lower_bound": result.initial_lower_bound,
    }


def synthesis_from_payload(
    payload: dict, spec: TargetSpec
) -> Optional[SynthesisResult]:
    """Rebuild a result against the *current* spec, or None if malformed."""
    if payload.get("kind") != "synthesis":
        return None
    try:
        assignment = assignment_from_wire(
            payload["assignment"], spec.num_inputs, spec.name_list()
        )
        if assignment is None:
            return None
        return SynthesisResult(
            spec=spec,
            assignment=assignment,
            lower_bound=payload["lower_bound"],
            initial_upper_bound=payload["initial_upper_bound"],
            upper_bounds={
                k: (r, c) for k, (r, c) in payload["upper_bounds"].items()
            },
            attempts=[
                attempt_from_wire(a, cached=True)
                for a in payload["attempts"]
            ],
            wall_time=payload["wall_time"],
            method=payload["method"],
            initial_lower_bound=payload["initial_lower_bound"],
        )
    except (KeyError, TypeError, ValueError):
        return None
