"""Parallel synthesis engine: process-pool probe racing + result caching.

Architecture (one paragraph per layer):

* :mod:`repro.engine.signature` — canonical cache keys.  An LM probe is
  identified by the target's truth-table/don't-care bits and covers, the
  lattice shape, and an options fingerprint; names are excluded so
  cosmetic differences never fragment the cache.
* :mod:`repro.engine.cache` — a persistent on-disk store of probe
  results (JSON payloads under sharded directories, atomic writes), safe
  to share between concurrent processes and runs.
* :mod:`repro.engine.worker` — picklable requests and module-level
  functions that execute inside ``ProcessPoolExecutor`` workers, each
  enforcing its own conflict/wall-clock budgets.
* :mod:`repro.engine.parallel` — :class:`ParallelEngine`, the
  :class:`~repro.core.janus.SerialProber` replacement that races sibling
  candidate shapes, answers repeats from the cache, and (optionally)
  runs an eager-vs-CEGAR portfolio per probe.

The engine plugs into the existing entry points rather than replacing
them: ``synthesize(..., prober=engine)``, ``run_table2(..., jobs=4,
cache=dir)``, and the CLI's ``--jobs``/``--cache`` flags.
"""

from repro.engine.cache import ResultCache
from repro.engine.parallel import EngineStats, ParallelEngine, default_jobs
from repro.engine.signature import (
    lm_cache_key,
    options_fingerprint,
    spec_fingerprint,
)
from repro.engine.worker import LmRequest, run_lm_request

__all__ = [
    "EngineStats",
    "LmRequest",
    "ParallelEngine",
    "ResultCache",
    "default_jobs",
    "lm_cache_key",
    "options_fingerprint",
    "run_lm_request",
    "spec_fingerprint",
]
