"""Parallel synthesis engine: probe racing, speculation, layered caching.

Architecture (one paragraph per layer):

* :mod:`repro.engine.signature` — canonical cache keys.  An LM probe is
  identified by the target's truth-table/don't-care bits and covers, the
  lattice shape, and an options fingerprint; names are excluded so
  cosmetic differences never fragment the cache.
* :mod:`repro.engine.cache` — a persistent on-disk store of JSON
  payloads (sharded directories, atomic writes), safe to share between
  concurrent processes and runs; writes degrade gracefully when the
  directory is unwritable.
* :mod:`repro.engine.suite` — the suite-level layer on top of the probe
  cache: whole :class:`~repro.core.janus.SynthesisResult` records keyed
  by spec+options fingerprint, so warm runs skip bounds computation and
  the dichotomic loop entirely.
* :mod:`repro.engine.gc` — eviction policy: age- and size-bounded GC
  plus sweeping of stale temp files (exposed as ``janus cache``).
* :mod:`repro.engine.worker` — picklable requests and module-level
  functions that execute inside ``ProcessPoolExecutor`` workers, each
  enforcing its own conflict/wall-clock budgets.
* :mod:`repro.engine.parallel` — :class:`ParallelEngine`, the
  :class:`~repro.core.janus.SerialProber` replacement that races sibling
  candidate shapes, speculatively prefetches both possible next
  dichotomic steps, answers repeats from the caches, and (optionally)
  runs an eager-vs-CEGAR portfolio per probe.

The engine plugs into the existing entry points rather than replacing
them: ``synthesize(..., prober=engine)``, ``run_table2(..., jobs=4,
cache=dir)``, and the CLI's ``--jobs``/``--cache``/``--portfolio``
flags.
"""

from repro.engine.cache import ResultCache
from repro.engine.events import (
    BoundComputed,
    CacheEvent,
    EngineEvent,
    EventEmitter,
    ProbeFinished,
    ProbeStarted,
    SynthesisFinished,
    SynthesisStarted,
)
from repro.engine.gc import CacheStats, GcReport, cache_stats, gc_cache
from repro.engine.memcache import LruCache
from repro.engine.parallel import EngineStats, ParallelEngine, default_jobs
from repro.engine.signature import (
    lm_cache_key,
    options_fingerprint,
    spec_fingerprint,
)
from repro.engine.suite import (
    suite_cache_key,
    synthesis_from_payload,
    synthesis_payload,
)
from repro.engine.verify import VerifyReport, verify_cache
from repro.engine.worker import LmRequest, run_lm_request

__all__ = [
    "BoundComputed",
    "CacheEvent",
    "CacheStats",
    "EngineEvent",
    "EngineStats",
    "EventEmitter",
    "GcReport",
    "LmRequest",
    "LruCache",
    "ParallelEngine",
    "ProbeFinished",
    "ProbeStarted",
    "ResultCache",
    "SynthesisFinished",
    "SynthesisStarted",
    "VerifyReport",
    "cache_stats",
    "default_jobs",
    "gc_cache",
    "lm_cache_key",
    "options_fingerprint",
    "run_lm_request",
    "spec_fingerprint",
    "suite_cache_key",
    "synthesis_from_payload",
    "synthesis_payload",
    "verify_cache",
]
