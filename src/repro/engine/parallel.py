"""Process-pool portfolio/batch synthesis engine.

:class:`ParallelEngine` is a drop-in :class:`~repro.core.janus.SerialProber`
replacement that scales JANUS three ways without changing its answers:

* **Shape racing** — each dichotomic step of the search probes a list of
  maximal candidate shapes.  The engine dispatches every sibling
  ``(rows, cols)`` probe to a worker process up front, then consumes the
  outcomes *in candidate order*; as soon as the first SAT shape (in that
  order) is known, pending losers are cancelled.  Because the winner is
  chosen by candidate order, not completion order, the search makes
  exactly the decisions the serial prober would — results are
  byte-identical, only the wall clock shrinks.

* **Result caching** — probes are keyed by a canonical function signature
  (truth-table/cover hash + options fingerprint + shape, see
  :mod:`repro.engine.signature`) in a persistent on-disk
  :class:`~repro.engine.cache.ResultCache`.  Repeated workloads skip
  solved instances entirely: a warm run performs zero SAT solver calls
  (``EngineStats.solver_calls == 0``).  Race losers that complete anyway
  are harvested into the cache instead of wasted.

* **Portfolio probes** (opt-in) — ``portfolio=True`` races the eager
  paper encoding against the lazy CEGAR backend per instance and takes
  the first decisive answer.  This can change which (equally valid)
  lattice is found, so it is off by default and never used inside the
  deterministic shape race.

Workers are plain ``ProcessPoolExecutor`` processes executing the
module-level functions in :mod:`repro.engine.worker`; every request
carries its own budgets (conflicts and optional wall clock), so a runaway
probe can exhaust only its own worker.  ``jobs=1`` disables the pool but
keeps the cache, which is what nested engines inside suite-sharding
workers use.
"""

from __future__ import annotations

import os
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.core.bounds import best_upper_bound, combine_bounds
from repro.core.janus import (
    JanusOptions,
    LmAttempt,
    LmOutcome,
    SerialProber,
    SynthesisResult,
    solve_lm,
)
from repro.core.janus import synthesize as _synthesize
from repro.core.target import TargetSpec
from repro.engine.cache import ResultCache
from repro.engine.signature import lm_cache_key
from repro.engine.worker import (
    LmRequest,
    bound_from_payload,
    outcome_from_payload,
    outcome_payload,
    run_bound_request,
    run_lm_request,
)
from repro.lattice.assignment import LatticeAssignment

__all__ = ["EngineStats", "ParallelEngine", "default_jobs"]


def default_jobs() -> int:
    """Worker count when the caller does not choose: one per CPU."""
    return max(1, os.cpu_count() or 1)


@dataclass
class EngineStats:
    """Work accounting for one engine lifetime.

    ``solver_calls`` counts LM probes that actually ran a SAT solver
    (locally or in a worker) — a warm-cache run keeps it at zero, which
    is the property the cache tests pin down.
    """

    solver_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0
    dispatched: int = 0  # probes submitted to the pool
    cancelled: int = 0  # pool probes cancelled before they started
    harvested: int = 0  # race losers whose finished results fed the cache
    conflicts: int = 0  # aggregate SAT conflicts over computed probes
    bound_tasks: int = 0


class ParallelEngine(SerialProber):
    """Parallel, cache-aware LM probe backend for JANUS.

    Use as a context manager (the process pool holds OS resources)::

        with ParallelEngine(jobs=4, cache="~/.cache/janus") as engine:
            result = engine.synthesize("ab + a'b'c")
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Union[ResultCache, str, Path, None] = None,
        portfolio: bool = False,
    ) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.portfolio = portfolio
        self.stats = EngineStats()
        self._executor: Optional[ProcessPoolExecutor] = None
        self._closed = False

    # ------------------------------------------------------------- plumbing
    @property
    def _pool(self) -> Optional[ProcessPoolExecutor]:
        if self.jobs <= 1 or self._closed:
            return None
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        self._closed = True

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ---------------------------------------------------------------- cache
    def _cacheable(self, payload: dict, options: JanusOptions) -> bool:
        if payload["status"] in ("sat", "unsat"):
            return True
        # A budget "unknown" is only reproducible when the budget is a
        # deterministic conflict count, not a wall clock.
        return options.lm_time_limit is None

    def _cache_get(
        self, key: str, spec: TargetSpec, options: JanusOptions
    ) -> Optional[LmOutcome]:
        if self.cache is None:
            return None
        payload = self.cache.get(key)
        if payload is None:
            self.stats.cache_misses += 1
            return None
        self.stats.cache_hits += 1
        return outcome_from_payload(payload, spec, cached=True)

    def _cache_put(
        self, key: str, payload: dict, options: JanusOptions
    ) -> None:
        if self.cache is not None and self._cacheable(payload, options):
            self.cache.put(key, payload)

    # ---------------------------------------------------------------- probes
    def _record(self, outcome: LmOutcome) -> LmOutcome:
        self.stats.solver_calls += 1
        self.stats.conflicts += outcome.attempt.conflicts
        return outcome

    def solve(
        self,
        spec: TargetSpec,
        rows: int,
        cols: int,
        options: JanusOptions,
    ) -> LmOutcome:
        """One cache-aware probe (used by ``fit_columns`` and callers)."""
        race = self.portfolio and self.jobs > 1 and not self._closed
        # Portfolio results may come from the CEGAR backend and need not
        # match the eager lattice, so they live under their own key —
        # they must never poison a deterministic run sharing the cache.
        key = lm_cache_key(
            spec, rows, cols, options, backend="portfolio" if race else "eager"
        )
        hit = self._cache_get(key, spec, options)
        if hit is not None:
            return hit
        if race and self._pool is not None:
            outcome = self._solve_portfolio(spec, rows, cols, options)
        else:
            outcome = solve_lm(spec, rows, cols, options)
        self._record(outcome)
        self._cache_put(key, outcome_payload(outcome), options)
        return outcome

    def _solve_portfolio(
        self,
        spec: TargetSpec,
        rows: int,
        cols: int,
        options: JanusOptions,
    ) -> LmOutcome:
        """Race the eager and lazy backends; first decisive answer wins."""
        from concurrent.futures import FIRST_COMPLETED, wait

        pool = self._pool
        assert pool is not None
        futures = {
            pool.submit(
                run_lm_request, LmRequest(spec, rows, cols, options, backend)
            ): backend
            for backend in ("eager", "lazy")
        }
        self.stats.dispatched += len(futures)
        best: Optional[LmOutcome] = None
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                outcome = outcome_from_payload(fut.result(), spec)
                if outcome.status in ("sat", "unsat"):
                    for other in pending:
                        if other.cancel():
                            self.stats.cancelled += 1
                    return outcome
                best = outcome
        assert best is not None  # both backends returned "unknown"
        return best

    def first_sat(
        self,
        spec: TargetSpec,
        shapes: Sequence[tuple[int, int]],
        options: JanusOptions,
        attempts: list[LmAttempt],
    ) -> Optional[LatticeAssignment]:
        """Race sibling candidate shapes; first SAT *in candidate order*.

        Mirrors the serial prober's contract exactly: one attempt per
        probed shape, stopping at the winner, so the driver's decisions
        (and final lattice) do not depend on completion order.
        """
        self.stats.batches += 1
        shapes = list(shapes)
        keys = [lm_cache_key(spec, r, c, options) for r, c in shapes]
        outcomes: dict[int, LmOutcome] = {}
        # A cached SAT outcome decides the batch at its index: later
        # shapes can never win, so neither look them up nor probe them.
        decided = len(shapes)
        for i, key in enumerate(keys):
            hit = self._cache_get(key, spec, options)
            if hit is not None:
                outcomes[i] = hit
                if hit.status == "sat":
                    decided = i + 1
                    break

        pool = self._pool
        futures: dict[int, Future] = {}
        if pool is not None:
            for i, (rows, cols) in enumerate(shapes[:decided]):
                if i in outcomes:
                    continue
                futures[i] = pool.submit(
                    run_lm_request, LmRequest(spec, rows, cols, options)
                )
                self.stats.dispatched += 1

        winner: Optional[LatticeAssignment] = None
        for i, (rows, cols) in enumerate(shapes):
            outcome = outcomes.get(i)
            if outcome is None:
                fut = futures.pop(i, None)
                if fut is not None:
                    outcome = outcome_from_payload(fut.result(), spec)
                else:  # no pool: solve locally, in order
                    outcome = solve_lm(spec, rows, cols, options)
                self._record(outcome)
                self._cache_put(keys[i], outcome_payload(outcome), options)
            attempts.append(outcome.attempt)
            if outcome.status == "sat":
                winner = outcome.assignment
                break

        # Losers: cancel what never started; results that still complete
        # are harvested into the cache by a done-callback (free warm-up).
        for i, fut in futures.items():
            if fut.cancel():
                self.stats.cancelled += 1
            else:
                fut.add_done_callback(self._harvester(keys[i], options))
        return winner

    def _harvester(self, key: str, options: JanusOptions) -> Callable:
        def harvest(fut: Future) -> None:
            if fut.cancelled() or fut.exception() is not None:
                return
            self.stats.harvested += 1
            self._cache_put(key, fut.result(), options)

        return harvest

    # ---------------------------------------------------------------- bounds
    def upper_bounds(self, spec: TargetSpec, methods: tuple[str, ...]):
        """Run the constructive bound methods across the pool.

        Results are combined with the same tie-break as the serial path
        (:func:`repro.core.bounds.combine_bounds`), so the chosen initial
        bound is identical.
        """
        pool = self._pool
        if pool is None or len(methods) <= 1:
            return best_upper_bound(spec, methods)
        payloads = pool.map(
            run_bound_request, [(spec, m) for m in methods], chunksize=1
        )
        self.stats.bound_tasks += len(methods)
        results = {
            method: bound_from_payload(payload, spec)
            for method, payload in zip(methods, payloads)
            if payload is not None
        }
        return combine_bounds(spec, results)

    # ---------------------------------------------------------------- driver
    def synthesize(
        self,
        target,
        name: str = "f",
        options: JanusOptions = JanusOptions(),
    ) -> SynthesisResult:
        """Run JANUS with this engine as the probe backend."""
        return _synthesize(target, name=name, options=options, prober=self)

    def imap_ordered(self, fn: Callable, items: Iterable):
        """Apply a picklable function across the pool, yielding results in
        input order as they become available.

        Falls back to a plain serial map when the engine has no pool —
        callers get deterministic ordering either way.
        """
        items = list(items)
        pool = self._pool
        if pool is None:
            for item in items:
                yield fn(item)
            return
        yield from pool.map(fn, items, chunksize=1)

    def map_ordered(self, fn: Callable, items: Iterable) -> list:
        """Like :meth:`imap_ordered` but collected into a list."""
        return list(self.imap_ordered(fn, items))

    def __repr__(self) -> str:
        cache = self.cache.root if self.cache is not None else None
        return (
            f"ParallelEngine(jobs={self.jobs}, cache={str(cache)!r}, "
            f"portfolio={self.portfolio})"
        )
