"""Process-pool portfolio/batch synthesis engine.

:class:`ParallelEngine` is a drop-in :class:`~repro.core.janus.SerialProber`
replacement that scales JANUS four ways without changing its answers:

* **Shape racing** — each dichotomic step of the search probes a list of
  maximal candidate shapes.  The engine dispatches every sibling
  ``(rows, cols)`` probe to a worker process up front, then consumes the
  outcomes *in candidate order*; as soon as the first SAT shape (in that
  order) is known, pending losers are cancelled.  Because the winner is
  chosen by candidate order, not completion order, the search makes
  exactly the decisions the serial prober would — results are
  byte-identical, only the wall clock shrinks.

* **Speculative probing** — the dichotomic loop has only two possible
  next steps: SAT at the midpoint ``mp`` shrinks the upper bound to the
  found size, UNSAT raises the lower bound to ``mp + 1``.  While the
  engine consumes the current step's race it prefetches the candidate
  shapes of both possible next midpoints (``(lb + found.size) // 2``
  once the winner is known, ``(mp + 1 + ub) // 2`` up front) into idle
  workers.  The branch the driver actually takes finds its probes
  already in flight; the losing branch is discarded (cancelled if not
  started, harvested into the cache if it completed anyway).  The driver
  still consumes in candidate order, so results stay byte-identical.

* **Result caching** — probes are keyed by a canonical function signature
  (truth-table/cover hash + options fingerprint + shape, see
  :mod:`repro.engine.signature`) in a persistent on-disk
  :class:`~repro.engine.cache.ResultCache`.  On top of that sits the
  suite-level cache (:mod:`repro.engine.suite`): :meth:`synthesize`
  stores whole :class:`~repro.core.janus.SynthesisResult` records, so a
  warm run skips the bounds computation and the dichotomic loop
  entirely, not just the SAT calls.  Race losers that complete anyway
  are harvested into the probe cache instead of wasted.

* **Portfolio probes** (opt-in) — ``portfolio=True`` races the eager
  paper encoding under several :class:`~repro.sat.solver.SolverConfig`
  presets *and* the lazy CEGAR backend per instance, taking the first
  decisive answer (losers are cancelled; per-preset win counts land in
  ``EngineStats.preset_wins``).  This can change which (equally valid)
  lattice is found, so it is off by default, never used inside the
  deterministic shape race, and cached under its own key namespace
  (which encodes the preset list, so differently-tuned portfolios never
  collide).

Workers are plain ``ProcessPoolExecutor`` processes executing the
module-level functions in :mod:`repro.engine.worker`; every request
carries its own budgets (conflicts and optional wall clock), so a runaway
probe can exhaust only its own worker.  ``jobs=1`` disables the pool but
keeps both cache layers, which is what nested engines inside
suite-sharding workers use.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence, Union

from repro.core.bounds import best_upper_bound, combine_bounds
from repro.core.janus import (
    IncrementalProber,
    JanusOptions,
    LmAttempt,
    LmOutcome,
    SerialProber,
    SynthesisResult,
    candidate_shapes,
    make_spec,
)
from repro.core.janus import synthesize as _synthesize
from repro.core.target import TargetSpec
from repro.engine.cache import ResultCache
from repro.engine.events import (
    BoundComputed,
    CacheEvent,
    EngineEvent,
    EventEmitter,
    ProbeFinished,
    ProbeStarted,
    SynthesisFinished,
    SynthesisStarted,
)
from repro.engine.memcache import DEFAULT_MEMORY_ENTRIES, LruCache
from repro.engine.signature import InputTransform, lm_cache_key, npn_alias_key
from repro.engine.suite import (
    suite_cache_key,
    synthesis_from_payload,
    synthesis_payload,
)
from repro.engine.wire import spec_snapshot
from repro.errors import SolverError
from repro.gen.dispatch import DispatchTable, classify
from repro.engine.worker import (
    LmRequest,
    bound_from_payload,
    outcome_from_payload,
    outcome_payload,
    run_bound_request,
    run_lm_request,
)
from repro.lattice.assignment import LatticeAssignment
from repro.sat.solver import SolverConfig

__all__ = [
    "DEFAULT_PORTFOLIO_PRESETS",
    "EngineStats",
    "ParallelEngine",
    "default_jobs",
]

# The presets a portfolio race covers by default: one darting config,
# the byte-identity default, and one clause-hoarding config — three
# genuinely different trajectories per instance (plus the lazy CEGAR
# backend, which always joins the race under the default config).
DEFAULT_PORTFOLIO_PRESETS: tuple[str, ...] = ("agile", "default", "heavy")


def default_jobs() -> int:
    """Worker count when the caller does not choose: one per *available*
    CPU.

    ``os.cpu_count()`` reports the machine, not the process: inside a
    cgroup-limited container or under a CPU affinity mask it overstates
    what we can actually use, and oversubscribing a single granted CPU
    with one worker per physical core only adds scheduling overhead.
    ``os.sched_getaffinity`` reflects both limits where the platform
    supports it.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


@dataclass
class EngineStats:
    """Work accounting for one engine lifetime.

    ``solver_calls`` counts LM probes that actually ran a SAT solver
    (locally or in a worker) — a warm-cache run keeps it at zero, which
    is the property the cache tests pin down.  ``bound_calls`` does the
    same for upper-bound computations: a warm *suite*-cache run keeps
    both at zero.
    """

    solver_calls: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    batches: int = 0
    dispatched: int = 0  # probes submitted to the pool
    cancelled: int = 0  # pool probes cancelled before they started
    harvested: int = 0  # race losers whose finished results fed the cache
    conflicts: int = 0  # aggregate SAT conflicts over computed probes
    bound_tasks: int = 0  # bound constructions dispatched to the pool
    bound_calls: int = 0  # upper-bound computations (pooled or serial)
    suite_hits: int = 0  # whole results served from the suite cache
    suite_misses: int = 0
    speculated: int = 0  # probes prefetched for a possible next step
    speculative_hits: int = 0  # prefetched probes a later step consumed
    speculative_waste: int = 0  # prefetched probes the search never needed
    memory_hits: int = 0  # cache hits served by the in-process LRU layer
    memory_misses: int = 0  # LRU lookups that fell through to disk
    # --- solver-level reuse counters (incremental probe protocol) ---
    propagations: int = 0  # aggregate SAT propagations over computed probes
    solver_restarts: int = 0  # solver restarts performed by computed probes
    reuse_hits: int = 0  # probes answered by a live per-instance solver
    pruned_shapes: int = 0  # probes answered by shape-domination pruning
    restarts_avoided: int = 0  # restarts a cold re-solve of a cache hit
    # would have repeated (the hit's recorded restart count)
    speculated_deep: int = 0  # grandchild-midpoint prefetches (depth 2)
    npn_hits: int = 0  # suite results served via NPN-class aliasing
    dispatch_hits: int = 0  # races replaced by a decisive learned probe
    dispatch_misses: int = 0  # races run blind (no rule, or probe indecisive)
    # "backend:preset" -> number of portfolio races that entry won
    preset_wins: dict = field(default_factory=dict)
    # propagation-core name -> number of computed probes it served
    cores: dict = field(default_factory=dict)

    def merge(self, other: dict) -> None:
        """Fold a stats snapshot (``dataclasses.asdict`` form) into self."""
        for field_name, value in other.items():
            if not hasattr(self, field_name):
                continue
            current = getattr(self, field_name)
            if isinstance(current, dict):
                for key, count in (value or {}).items():
                    current[key] = current.get(key, 0) + count
            else:
                setattr(self, field_name, current + value)


class ParallelEngine(SerialProber):
    """Parallel, cache-aware LM probe backend for JANUS.

    Use as a context manager (the process pool holds OS resources)::

        with ParallelEngine(jobs=4, cache="~/.cache/janus") as engine:
            result = engine.synthesize("ab + a'b'c")

    ``speculate`` controls next-midpoint prefetching (on by default; it
    only ever adds work to otherwise-idle workers).  ``suite`` controls
    the whole-result cache layer in :meth:`synthesize` (on by default
    whenever ``cache`` is set; turn it off to benchmark the probe cache
    in isolation).
    """

    def __init__(
        self,
        jobs: Optional[int] = None,
        cache: Union[ResultCache, str, Path, None] = None,
        portfolio: bool = False,
        speculate: bool = True,
        speculate_depth: int = 2,
        suite: bool = True,
        memory: Optional[int] = None,
        events: Optional[Callable[[EngineEvent], None]] = None,
        npn: bool = False,
        presets: Optional[Sequence[str]] = None,
        dispatch: Union[DispatchTable, str, Path, None] = None,
    ) -> None:
        self.jobs = default_jobs() if jobs is None else max(1, int(jobs))
        if cache is not None and not isinstance(cache, ResultCache):
            cache = ResultCache(cache)
        self.cache = cache
        self.portfolio = portfolio
        # Preset names are resolved eagerly so an unknown name fails at
        # construction, not in a worker mid-race.
        self.presets: tuple[str, ...] = tuple(
            presets if presets is not None else DEFAULT_PORTFOLIO_PRESETS
        )
        for name in self.presets:
            SolverConfig.preset(name)
        if portfolio and not self.presets:
            raise ValueError("portfolio mode needs at least one preset")
        self.speculate = speculate
        self.speculate_depth = max(1, int(speculate_depth))
        self.suite = suite
        self.npn = npn
        self.stats = EngineStats()
        # Local probes (no pool, or the fit_columns seam) run on an
        # in-process incremental prober: one live solver per instance,
        # byte-identical answers (see IncrementalProber).
        self._local = IncrementalProber()
        # In-memory LRU above the on-disk cache: hot intra-run repeats
        # skip the file open + JSON parse.  ``memory`` is an entry count
        # (0 disables); without a disk cache there is nothing to layer
        # over, so the LRU stays off and probe semantics are unchanged.
        if memory is None:
            memory = DEFAULT_MEMORY_ENTRIES
        self.memory: Optional[LruCache] = (
            LruCache(memory) if (cache is not None and memory > 0) else None
        )
        self.events = EventEmitter(events)
        # Learned portfolio dispatch: a DispatchTable (shared object) or a
        # path to one.  When the engine resolves the path itself it owns
        # the table and persists it on close; a shared object is the
        # caller's to save (a server pool hands one table to N sessions).
        self._dispatch_owner = dispatch is not None and not isinstance(
            dispatch, DispatchTable
        )
        if self._dispatch_owner:
            dispatch = DispatchTable(dispatch)
        self.dispatch: Optional[DispatchTable] = dispatch
        self._dispatch_classes: dict[tuple, str] = {}
        self._executor: Optional[ProcessPoolExecutor] = None
        self._prefetched: dict[str, Future] = {}
        self._closed = False

    # ------------------------------------------------------------- plumbing
    @property
    def _pool(self) -> Optional[ProcessPoolExecutor]:
        if self.jobs <= 1 or self._closed:
            return None
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def close(self) -> None:
        self._drop_prefetched()
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        if (
            self._dispatch_owner
            and self.dispatch is not None
            and self.dispatch.path is not None
            and not self._closed
        ):
            self.dispatch.save()
        self._closed = True

    def __enter__(self) -> "ParallelEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ---------------------------------------------------------------- cache
    @property
    def _mode(self) -> str:
        """Key namespace: portfolio answers must never serve strict runs.

        The preset list is part of the namespace — two portfolios racing
        different preset sets may settle on different (equally valid)
        lattices, so their cache entries must not be interchangeable.
        """
        if self.portfolio and self.jobs > 1:
            return f"portfolio[{','.join(self.presets)}]"
        return "eager"

    def _cacheable(self, payload: dict, options: JanusOptions) -> bool:
        if payload["status"] in ("sat", "unsat"):
            return True
        # A budget "unknown" is only reproducible when the budget is a
        # deterministic conflict count, not a wall clock.
        return options.lm_time_limit is None

    def _suite_cacheable(
        self, result: SynthesisResult, options: JanusOptions
    ) -> bool:
        """Whole results follow the same reproducibility policy as probes:
        a search whose decisions rested on a wall-clock "unknown" (probe
        treated as unrealizable because *this machine* ran out of time)
        must not be frozen into the cache."""
        if options.lm_time_limit is None:
            return True
        return not any(a.status == "unknown" for a in result.attempts)

    def _payload_get(
        self, key: str, name: str, emit: bool = True
    ) -> Optional[dict]:
        """Layered lookup: in-process LRU first, then the on-disk cache.

        Disk hits are promoted into the LRU so the next intra-run repeat
        is a dict lookup.  Emits one :class:`CacheEvent` per lookup,
        tagged with the layer that answered (or ``disk``/miss); callers
        that emit their own per-lookup event (the suite layer) pass
        ``emit=False`` so a lookup never produces two events.
        """
        if self.memory is not None:
            payload = self.memory.get(key)
            if payload is not None:
                self.stats.memory_hits += 1
                if emit and self.events:
                    self.events.emit(CacheEvent(name, "memory", True, key))
                return payload
            self.stats.memory_misses += 1
        if self.cache is None:
            return None
        payload = self.cache.get(key)
        if payload is not None and self.memory is not None:
            self.memory.put(key, payload)
        if emit and self.events:
            self.events.emit(CacheEvent(name, "disk", payload is not None, key))
        return payload

    def _cache_get(
        self, key: str, spec: TargetSpec, options: JanusOptions
    ) -> Optional[LmOutcome]:
        if self.cache is None:
            return None
        payload = self._payload_get(key, spec.name)
        if payload is None:
            self.stats.cache_misses += 1
            return None
        self.stats.cache_hits += 1
        outcome = outcome_from_payload(payload, spec, cached=True)
        # A cold re-solve of this probe would have repeated the recorded
        # restart schedule; the hit skips it.
        self.stats.restarts_avoided += outcome.attempt.restarts
        return outcome

    def _cache_put(
        self, key: str, payload: dict, options: JanusOptions
    ) -> None:
        if self.cache is not None and self._cacheable(payload, options):
            self.cache.put(key, payload)
            if self.memory is not None:
                self.memory.put(key, payload)

    # ---------------------------------------------------------------- events
    def _probe_started(
        self, spec: TargetSpec, rows: int, cols: int, speculative: bool = False
    ) -> None:
        if self.events:
            self.events.emit(ProbeStarted(spec.name, rows, cols, speculative))

    def _probe_finished(self, spec: TargetSpec, outcome: LmOutcome) -> None:
        if self.events:
            a = outcome.attempt
            self.events.emit(
                ProbeFinished(
                    spec.name,
                    a.rows,
                    a.cols,
                    outcome.status,
                    conflicts=a.conflicts,
                    wall_time=a.wall_time,
                    cached=a.cached,
                    side=a.side,
                )
            )

    # ---------------------------------------------------------------- probes
    def _record(self, outcome: LmOutcome) -> LmOutcome:
        self.stats.solver_calls += 1
        attempt = outcome.attempt
        self.stats.conflicts += attempt.conflicts
        self.stats.propagations += attempt.propagations
        self.stats.solver_restarts += attempt.restarts
        if attempt.status != "structural" and not (
            attempt.cached or attempt.pruned
        ):
            # Structural prechecks decide without constructing a solver,
            # so no propagation core served them — keep them out of the
            # capacity tally.
            core = attempt.core
            self.stats.cores[core] = self.stats.cores.get(core, 0) + 1
        if attempt.reused:
            self.stats.reuse_hits += 1
        if attempt.pruned:
            self.stats.pruned_shapes += 1
        return outcome

    def solve(
        self,
        spec: TargetSpec,
        rows: int,
        cols: int,
        options: JanusOptions,
    ) -> LmOutcome:
        """One cache-aware probe (used by ``fit_columns`` and callers)."""
        race = self.portfolio and self.jobs > 1 and not self._closed
        # Portfolio results may come from the CEGAR backend or a
        # non-default preset and need not match the eager lattice, so
        # they live under their own key (including the preset list) —
        # they must never poison a deterministic run sharing the cache.
        key = lm_cache_key(
            spec, rows, cols, options, backend=self._mode if race else "eager"
        )
        hit = self._cache_get(key, spec, options)
        if hit is not None:
            self._probe_finished(spec, hit)
            return hit
        self._probe_started(spec, rows, cols)
        if race and self._pool is not None:
            outcome = self._solve_portfolio(spec, rows, cols, options)
        else:
            outcome = self._local.solve(spec, rows, cols, options)
        self._record(outcome)
        self._cache_put(key, outcome_payload(outcome, spec), options)
        self._probe_finished(spec, outcome)
        return outcome

    def _dispatch_class(self, spec: TargetSpec) -> str:
        """The spec's dispatch class, memoized per function (classifying
        costs a symmetry pass; the dichotomic loop probes one spec many
        times)."""
        memo_key = (
            spec.tt.key(),
            spec.dc.key() if spec.dc is not None else b"",
        )
        cls = self._dispatch_classes.get(memo_key)
        if cls is None:
            cls = classify(spec)
            self._dispatch_classes[memo_key] = cls
        return cls

    def _solve_learned(
        self,
        spec: TargetSpec,
        rows: int,
        cols: int,
        options: JanusOptions,
        label: str,
        rule_class: str,
    ) -> Optional[LmOutcome]:
        """Try the learned winner alone: one probe instead of the race.

        Returns ``None`` (caller falls back to the blind race) when the
        label does not parse against this engine's configuration or the
        probe comes back indecisive.  Only presets in ``self.presets``
        are accepted for the eager backend (and only ``default`` for the
        lazy one): a stale table from a differently-configured run must
        not smuggle foreign presets into this portfolio's cache
        namespace.
        """
        backend, _, preset = label.partition(":")
        if backend not in ("eager", "lazy") or not preset:
            return None
        if backend == "eager" and preset not in self.presets:
            return None
        if backend == "lazy" and preset != "default":
            return None
        try:
            tuned = replace(options, solver=SolverConfig.preset(preset))
        except SolverError:
            return None
        pool = self._pool
        assert pool is not None
        fut = pool.submit(
            run_lm_request, LmRequest(spec, rows, cols, tuned, backend)
        )
        self.stats.dispatched += 1
        outcome = outcome_from_payload(fut.result(), spec)
        if outcome.status not in ("sat", "unsat"):
            return None
        self.stats.dispatch_hits += 1
        wins = self.stats.preset_wins
        wins[label] = wins.get(label, 0) + 1
        self.dispatch.record(rule_class, label)
        return outcome

    def _solve_portfolio(
        self,
        spec: TargetSpec,
        rows: int,
        cols: int,
        options: JanusOptions,
    ) -> LmOutcome:
        """Race the eager backend under every configured preset, plus the
        lazy CEGAR backend; the first decisive answer wins and the losers
        are cancelled.  The winner's ``backend:preset`` label is tallied
        in ``stats.preset_wins``.

        With a :class:`DispatchTable` attached, the spec's class is looked
        up first: a class with enough one-sided evidence launches only its
        learned winner (one probe instead of ``len(presets) + 1``); an
        indecisive learned probe, or a class without a rule yet, falls
        back to the blind race, whose decisive winner feeds the table.
        """
        from concurrent.futures import FIRST_COMPLETED, wait

        pool = self._pool
        assert pool is not None
        rule_class = None
        if self.dispatch is not None:
            rule_class = self._dispatch_class(spec)
            label = self.dispatch.best(rule_class)
            if label is not None:
                outcome = self._solve_learned(
                    spec, rows, cols, options, label, rule_class
                )
                if outcome is not None:
                    return outcome
            self.stats.dispatch_misses += 1
        entries = [("eager", name) for name in self.presets]
        entries.append(("lazy", "default"))
        futures: dict[Future, str] = {}
        for backend, preset in entries:
            tuned = replace(options, solver=SolverConfig.preset(preset))
            fut = pool.submit(
                run_lm_request, LmRequest(spec, rows, cols, tuned, backend)
            )
            futures[fut] = f"{backend}:{preset}"
        self.stats.dispatched += len(futures)
        best: Optional[LmOutcome] = None
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for fut in done:
                outcome = outcome_from_payload(fut.result(), spec)
                if outcome.status in ("sat", "unsat"):
                    label = futures[fut]
                    wins = self.stats.preset_wins
                    wins[label] = wins.get(label, 0) + 1
                    if rule_class is not None:
                        self.dispatch.record(rule_class, label)
                    for other in pending:
                        if other.cancel():
                            self.stats.cancelled += 1
                    return outcome
                best = outcome
        assert best is not None  # every racer returned "unknown"
        return best

    # ------------------------------------------------------------ speculation
    def _drop_prefetched(self, keep: Optional[set] = None) -> None:
        """Discard prefetched probes for branches the search did not take.

        Cancelled-before-start is pure win; a probe that already ran is
        harvested into the cache (its key is content-addressed, so the
        result is correct whenever it is asked for again).
        """
        for key in [k for k in self._prefetched if keep is None or k not in keep]:
            fut = self._prefetched.pop(key)
            self.stats.speculative_waste += 1
            if fut.cancel():
                self.stats.cancelled += 1
            else:
                fut.add_done_callback(self._spec_harvester(key))

    def _spec_harvester(self, key: str) -> Callable:
        def harvest(fut: Future) -> None:
            if fut.cancelled() or fut.exception() is not None:
                return
            if self.cache is not None:
                payload = fut.result()
                if payload["status"] in ("sat", "unsat"):
                    self.stats.harvested += 1
                    self.cache.put(key, payload)

        return harvest

    def _speculate_step(
        self,
        spec: TargetSpec,
        lower: int,
        upper: int,
        options: JanusOptions,
        exclude: set,
    ) -> None:
        """Prefetch the candidate shapes of the step ``(lower, upper)``
        would produce, skipping anything cached, in flight or excluded.

        With ``speculate_depth > 1`` and idle workers left over, the
        UNSAT-branch *grandchild* midpoints are prefetched too: of a
        step's two successors only the UNSAT one (``lb = mp + 1``, same
        ``ub``) is computable before any outcome arrives, so the chain
        ``mp, mp', mp'', ...`` of successive UNSAT branches is the only
        speculation available ahead of time — the SAT branch's midpoint
        depends on the found lattice's size and is speculated by the
        next call once the winner is known.
        """
        pool = self._pool
        if pool is None:
            return
        depth = 0
        while lower < upper and depth < self.speculate_depth:
            if depth > 0 and len(self._prefetched) >= self.jobs:
                break  # deeper midpoints only ever fill *idle* workers
            mp = (lower + upper) // 2
            for rows, cols in candidate_shapes(mp, lower):
                key = lm_cache_key(spec, rows, cols, options)
                if key in exclude or key in self._prefetched:
                    continue
                if self.cache is not None and key in self.cache:
                    continue
                self._prefetched[key] = pool.submit(
                    run_lm_request, LmRequest(spec, rows, cols, options)
                )
                self.stats.dispatched += 1
                self.stats.speculated += 1
                if depth > 0:
                    self.stats.speculated_deep += 1
                self._probe_started(spec, rows, cols, speculative=True)
            lower = mp + 1
            depth += 1

    def first_sat(
        self,
        spec: TargetSpec,
        shapes: Sequence[tuple[int, int]],
        options: JanusOptions,
        attempts: list[LmAttempt],
        bounds: Optional[tuple[int, int]] = None,
    ) -> Optional[LatticeAssignment]:
        """Race sibling candidate shapes; first SAT *in candidate order*.

        Mirrors the serial prober's contract exactly: one attempt per
        probed shape, stopping at the winner, so the driver's decisions
        (and final lattice) do not depend on completion order.

        ``bounds`` is the driver's current ``(lb, ub)`` window.  When
        given (and a pool exists), the engine speculates: the UNSAT
        branch's next step is prefetched immediately, the SAT branch's as
        soon as the winner (and therefore the new upper bound) is known.

        In portfolio mode each shape is decided by the preset race in
        :meth:`solve` instead (shapes in candidate order, presets racing
        within each probe) — the parallelism budget goes to the portfolio
        rather than to sibling shapes.
        """
        if self.portfolio and self.jobs > 1 and not self._closed and (
            self._pool is not None
        ):
            self.stats.batches += 1
            for rows, cols in shapes:
                outcome = self.solve(spec, rows, cols, options)
                attempts.append(outcome.attempt)
                if outcome.status == "sat":
                    return outcome.assignment
            return None
        self.stats.batches += 1
        shapes = list(shapes)
        keys = [lm_cache_key(spec, r, c, options) for r, c in shapes]
        current = set(keys)
        # Prefetches from the step before this one: anything not needed
        # now belonged to the branch the driver did not take.
        self._drop_prefetched(keep=current)
        outcomes: dict[int, LmOutcome] = {}
        # A cached SAT outcome decides the batch at its index: later
        # shapes can never win, so neither look them up nor probe them.
        decided = len(shapes)
        for i, key in enumerate(keys):
            hit = self._cache_get(key, spec, options)
            if hit is not None:
                outcomes[i] = hit
                if hit.status == "sat":
                    decided = i + 1
                    break

        pool = self._pool
        futures: dict[int, Future] = {}
        if pool is not None:
            for i, (rows, cols) in enumerate(shapes[:decided]):
                if i in outcomes:
                    continue
                fut = self._prefetched.pop(keys[i], None)
                if fut is not None:
                    self.stats.speculative_hits += 1
                else:
                    fut = pool.submit(
                        run_lm_request, LmRequest(spec, rows, cols, options)
                    )
                    self.stats.dispatched += 1
                    self._probe_started(spec, rows, cols)
                futures[i] = fut

        speculating = (
            self.speculate and bounds is not None and pool is not None
        )
        if speculating:
            lb, ub = bounds
            mp = (lb + ub) // 2
            # UNSAT branch: lb becomes mp + 1, ub unchanged — computable
            # before any outcome arrives.
            self._speculate_step(spec, mp + 1, ub, options, current)

        winner: Optional[LatticeAssignment] = None
        for i, (rows, cols) in enumerate(shapes):
            outcome = outcomes.get(i)
            if outcome is None:
                fut = futures.pop(i, None)
                if fut is not None:
                    outcome = outcome_from_payload(fut.result(), spec)
                else:  # no pool: solve locally, in order
                    self._probe_started(spec, rows, cols)
                    outcome = self._local.solve(spec, rows, cols, options)
                self._record(outcome)
                self._cache_put(
                    keys[i], outcome_payload(outcome, spec), options
                )
            attempts.append(outcome.attempt)
            self._probe_finished(spec, outcome)
            if outcome.status == "sat":
                winner = outcome.assignment
                if speculating and winner is not None:
                    # SAT branch: ub becomes the found size, lb unchanged.
                    self._speculate_step(
                        spec, lb, winner.size, options, current
                    )
                break

        # Losers: cancel what never started; results that still complete
        # are harvested into the cache by a done-callback (free warm-up).
        for i, fut in futures.items():
            if fut.cancel():
                self.stats.cancelled += 1
            else:
                fut.add_done_callback(self._harvester(keys[i], options))
        return winner

    def _harvester(self, key: str, options: JanusOptions) -> Callable:
        def harvest(fut: Future) -> None:
            if fut.cancelled() or fut.exception() is not None:
                return
            self.stats.harvested += 1
            self._cache_put(key, fut.result(), options)

        return harvest

    # ---------------------------------------------------------------- bounds
    def upper_bounds(self, spec: TargetSpec, methods: tuple[str, ...]):
        """Run the constructive bound methods across the pool.

        Results are combined with the same tie-break as the serial path
        (:func:`repro.core.bounds.combine_bounds`), so the chosen initial
        bound is identical.
        """
        self.stats.bound_calls += 1
        pool = self._pool
        if pool is None or len(methods) <= 1:
            best, all_bounds = best_upper_bound(spec, methods)
            self._bounds_computed(spec, all_bounds)
            return best, all_bounds
        payloads = pool.map(
            run_bound_request, [(spec, m) for m in methods], chunksize=1
        )
        self.stats.bound_tasks += len(methods)
        results = {
            method: bound_from_payload(payload, spec)
            for method, payload in zip(methods, payloads)
            if payload is not None
        }
        best, all_bounds = combine_bounds(spec, results)
        self._bounds_computed(spec, all_bounds)
        return best, all_bounds

    def _bounds_computed(self, spec: TargetSpec, all_bounds: dict) -> None:
        if self.events:
            for method, bound in all_bounds.items():
                self.events.emit(
                    BoundComputed(
                        spec.name, method, bound.rows, bound.cols, bound.size
                    )
                )

    # ---------------------------------------------------------------- driver
    def synthesize(
        self,
        target,
        name: str = "f",
        options: JanusOptions = JanusOptions(),
    ) -> SynthesisResult:
        """Run JANUS with this engine as the probe backend.

        With a cache attached (and ``suite=True``), the whole
        :class:`SynthesisResult` is persisted under the spec+options
        fingerprint: a warm call returns the stored result without
        recomputing bounds or entering the dichotomic loop at all.
        """
        spec = make_spec(target, name=name, exact=options.exact_minimization)
        if self.events:
            self.events.emit(SynthesisStarted(spec.name, self._mode))
        key = None
        if self.cache is not None and self.suite:
            start = time.monotonic()
            key = suite_cache_key(spec, options, mode=self._mode)
            payload = self._payload_get(key, spec.name, emit=False)
            if self.events:
                self.events.emit(
                    CacheEvent(spec.name, "suite", payload is not None, key)
                )
            if payload is not None:
                result = synthesis_from_payload(payload, spec)
                if result is not None:
                    self.stats.suite_hits += 1
                    result.wall_time = time.monotonic() - start
                    self._synthesis_finished(spec, result, from_cache=True)
                    return result
            # The n!*2^n canonicalization is computed once and shared by
            # the lookup below and the store after the solve.
            alias = self._npn_alias(spec, options)
            result = self._npn_lookup(spec, alias, key, start)
            if result is not None:
                self._synthesis_finished(spec, result, from_cache=True)
                return result
            self.stats.suite_misses += 1
        result = _synthesize(spec, name=name, options=options, prober=self)
        if key is not None and self._suite_cacheable(result, options):
            payload = synthesis_payload(result)
            self.cache.put(key, payload)
            if self.memory is not None:
                self.memory.put(key, payload)
            self._npn_store(alias, key)
        self._synthesis_finished(spec, result)
        return result

    # ----------------------------------------------------------- NPN aliases
    def _npn_alias(self, spec: TargetSpec, options: JanusOptions):
        if not self.npn or self.cache is None:
            return None
        return npn_alias_key(spec, options, mode=self._mode)

    def _npn_store(self, alias, exact_key: str) -> None:
        """Publish this spec's suite entry under its NP-class alias so an
        equivalent function (same class, different input labels or
        polarities) can share it."""
        if alias is None:
            return
        alias_key, transform = alias
        self.cache.put(alias_key, {
            "kind": "npn-alias",
            "exact_key": exact_key,
            "perm": list(transform.perm),
            "mask": transform.mask,
        })

    def _npn_lookup(
        self, spec: TargetSpec, alias, exact_key: str, start: float
    ) -> Optional[SynthesisResult]:
        """Serve a whole result from an NP-equivalent donor's suite entry.

        The donor's lattice is relabeled through the composite transform
        (donor -> canonical -> this spec) and the rebuilt assignment is
        re-verified against this spec before it is trusted — a failed
        verification degrades to a plain miss.  A verified hit is
        republished under this spec's own exact suite key, so repeats
        skip the pointer chase and re-verification entirely.
        """
        if alias is None:
            return None
        alias_key, to_canonical = alias
        pointer = self._payload_get(alias_key, spec.name, emit=False)
        hit = pointer is not None and pointer.get("kind") == "npn-alias"
        if self.events:
            self.events.emit(CacheEvent(spec.name, "npn", hit, alias_key))
        if not hit:
            return None
        donor_payload = self._payload_get(
            pointer["exact_key"], spec.name, emit=False
        )
        if donor_payload is None or donor_payload.get("assignment") is None:
            return None
        donor_to_canonical = InputTransform(
            tuple(pointer["perm"]), pointer["mask"]
        )
        composite = to_canonical.inverse().compose(donor_to_canonical)
        payload = dict(donor_payload)
        payload["assignment"] = dict(donor_payload["assignment"])
        payload["assignment"]["entries"] = [
            list(composite.apply_entry(var, positive))
            for var, positive in donor_payload["assignment"]["entries"]
        ]
        result = synthesis_from_payload(payload, spec)
        if result is None or not spec.accepts(
            result.assignment.realized_truthtable()
        ):
            return None
        self.stats.suite_hits += 1
        self.stats.npn_hits += 1
        payload["spec"] = spec_snapshot(spec)
        self.cache.put(exact_key, payload)
        if self.memory is not None:
            self.memory.put(exact_key, payload)
        result.wall_time = time.monotonic() - start
        return result

    def _synthesis_finished(
        self, spec: TargetSpec, result: SynthesisResult, from_cache: bool = False
    ) -> None:
        if self.events:
            self.events.emit(
                SynthesisFinished(
                    spec.name,
                    result.rows,
                    result.cols,
                    result.size,
                    result.wall_time,
                    from_cache=from_cache,
                )
            )

    def imap_ordered(self, fn: Callable, items: Iterable):
        """Apply a picklable function across the pool, yielding results in
        input order as they become available.

        Falls back to a plain serial map when the engine has no pool —
        callers get deterministic ordering either way.
        """
        items = list(items)
        pool = self._pool
        if pool is None:
            for item in items:
                yield fn(item)
            return
        yield from pool.map(fn, items, chunksize=1)

    def map_ordered(self, fn: Callable, items: Iterable) -> list:
        """Like :meth:`imap_ordered` but collected into a list."""
        return list(self.imap_ordered(fn, items))

    def __repr__(self) -> str:
        cache = self.cache.root if self.cache is not None else None
        return (
            f"ParallelEngine(jobs={self.jobs}, cache={str(cache)!r}, "
            f"portfolio={self.portfolio}, speculate={self.speculate})"
        )
