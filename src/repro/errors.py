"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ParseError(ReproError):
    """Raised when a Boolean expression or PLA file cannot be parsed."""


class DimensionError(ReproError):
    """Raised when operands have incompatible variable counts or shapes."""


class EncodingError(ReproError):
    """Raised when a CNF encoding request is malformed."""


class SolverError(ReproError):
    """Raised when the SAT solver is driven into an invalid state."""


class SynthesisError(ReproError):
    """Raised when lattice synthesis cannot produce a valid result."""


class BudgetExceeded(ReproError):
    """Raised when a configured resource budget (conflicts, time) runs out
    in a context where partial answers cannot be returned."""


class CacheError(ReproError):
    """Raised when the persistent result cache cannot be used (e.g. the
    cache path exists but is not a directory)."""


class ApiError(ReproError):
    """Base class for errors raised by the public :mod:`repro.api` facade."""


class ValidationError(ApiError):
    """Raised when an API request (or its wire form) fails validation."""


class UnknownBackendError(ApiError):
    """Raised when a request names a backend the registry does not know."""
