"""Exception hierarchy for the repro library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ParseError(ReproError):
    """Raised when a Boolean expression or PLA file cannot be parsed."""


class DimensionError(ReproError):
    """Raised when operands have incompatible variable counts or shapes."""


class EncodingError(ReproError):
    """Raised when a CNF encoding request is malformed."""


class SolverError(ReproError):
    """Raised when the SAT solver is driven into an invalid state."""


class SynthesisError(ReproError):
    """Raised when lattice synthesis cannot produce a valid result."""


class UnsatisfiableSignatureError(SynthesisError):
    """Raised when a published benchmark signature (#inputs, #prime
    implicants, degree) is internally inconsistent or the seeded search
    could not realize it.  Carries the structured signature so harnesses
    can report *which* instance is broken rather than a bare message."""

    def __init__(
        self,
        instance: str,
        num_inputs: int,
        num_products: int,
        degree: int,
        reason: str,
    ) -> None:
        self.instance = instance
        self.num_inputs = num_inputs
        self.num_products = num_products
        self.degree = degree
        self.reason = reason
        super().__init__(
            f"cannot synthesize signature for {instance!r} "
            f"(#in={num_inputs}, #pi={num_products}, degree={degree}): "
            f"{reason}"
        )


class BudgetExceeded(ReproError):
    """Raised when a configured resource budget (conflicts, time) runs out
    in a context where partial answers cannot be returned."""


class CacheError(ReproError):
    """Raised when the persistent result cache cannot be used (e.g. the
    cache path exists but is not a directory)."""


class ApiError(ReproError):
    """Base class for errors raised by the public :mod:`repro.api` facade."""


class ValidationError(ApiError):
    """Raised when an API request (or its wire form) fails validation."""


class UnknownBackendError(ApiError):
    """Raised when a request names a backend the registry does not know."""
