"""``repro.client`` — a stdlib HTTP client for the ``janus serve`` API.

:class:`ServiceClient` wraps ``http.client`` (no third-party
dependencies, matching the server) and speaks the same
:mod:`repro.api.schema` dataclasses as every other frontend: requests go
out as their canonical JSON, responses come back re-validated through
``from_json``, so a round-trip through the service is type-checked at
both ends::

    from repro.client import ServiceClient

    client = ServiceClient("127.0.0.1", 8080)
    response = client.synthesize("ab + a'b'c")      # SynthesisResponse
    print(response.shape, response.size)

    job_id = client.submit_batch([...])             # async batch
    for page in client.iter_events(job_id):         # long-poll pages
        print(page["events"])
    batch = client.wait_batch(job_id)               # BatchResponse

Error responses (the server's structured ``error`` envelope) raise
:class:`ServerError` carrying the HTTP status and the decoded payload.
Raw-byte accessors (:meth:`request_raw`) are exposed for tests that
assert exact wire bytes.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Iterator, Optional, Union
from urllib.parse import urlencode

from repro.api.schema import (
    BatchRequest,
    BatchResponse,
    SynthesisRequest,
    SynthesisResponse,
)
from repro.api.session import TargetLike
from repro.errors import ApiError

__all__ = ["ServiceClient", "ServerError"]


class ServerError(ApiError):
    """An error envelope returned by the service.

    ``status`` is the HTTP status code; ``payload`` the decoded error
    wire form (``kind == "error"``), when the body was JSON at all.
    """

    def __init__(self, status: int, payload: Optional[dict]) -> None:
        message = (payload or {}).get("error") or f"HTTP {status}"
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.payload = payload or {}


class ServiceClient:
    """A thin, connection-per-call client for one server address."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 8080, timeout: float = 120.0
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------ transport
    def request_raw(
        self,
        method: str,
        path: str,
        body: Union[str, bytes, None] = None,
        params: Optional[dict] = None,
    ) -> tuple[int, bytes]:
        """One HTTP exchange; returns ``(status, body bytes)`` verbatim."""
        if params:
            path = f"{path}?{urlencode(params)}"
        if isinstance(body, str):
            body = body.encode("utf-8")
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    @staticmethod
    def _raise_for_status(status: int, raw: bytes) -> None:
        if status < 400:
            return
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError:
            payload = None
        raise ServerError(status, payload)

    def _json(
        self,
        method: str,
        path: str,
        body: Union[str, bytes, None] = None,
        params: Optional[dict] = None,
    ) -> dict:
        status, raw = self.request_raw(method, path, body, params)
        self._raise_for_status(status, raw)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError:
            payload = None
        if not isinstance(payload, dict):
            raise ServerError(status, {"error": "non-JSON response body"})
        return payload

    @staticmethod
    def _knobs(
        backend: Optional[str],
        timeout: Optional[float],
        jobs: Optional[int],
    ) -> dict:
        params = {}
        if backend is not None:
            params["backend"] = backend
        if timeout is not None:
            params["timeout"] = timeout
        if jobs is not None:
            params["jobs"] = jobs
        return params

    # ------------------------------------------------------------ endpoints
    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def backends(self) -> list[str]:
        return self._json("GET", "/v1/backends")["backends"]

    def cache_stats(self) -> dict:
        return self._json("GET", "/v1/cache/stats")

    def synthesize(
        self,
        target: Union[SynthesisRequest, TargetLike],
        name: str = "f",
        backend: Optional[str] = None,
        timeout: Optional[float] = None,
        jobs: Optional[int] = None,
    ) -> SynthesisResponse:
        """POST one synthesis job; returns the decoded response.

        ``target`` may be a prepared :class:`SynthesisRequest` or any raw
        target form the schema accepts.  ``backend``/``timeout``/``jobs``
        become the server's per-request query knobs.
        """
        if not isinstance(target, SynthesisRequest):
            target = SynthesisRequest.from_target(target, name=name)
        status, raw = self.request_raw(
            "POST",
            "/v1/synthesize",
            target.to_json(),
            self._knobs(backend, timeout, jobs) or None,
        )
        self._raise_for_status(status, raw)
        return SynthesisResponse.from_json(raw.decode("utf-8"))

    def run_batch(
        self,
        batch: Union[BatchRequest, list],
        timeout: Optional[float] = None,
    ) -> BatchResponse:
        """POST a synchronous batch; returns the decoded batch response."""
        batch = self._coerce_batch(batch)
        status, raw = self.request_raw(
            "POST",
            "/v1/batch",
            batch.to_json(),
            {"timeout": timeout} if timeout is not None else None,
        )
        self._raise_for_status(status, raw)
        return BatchResponse.from_json(raw.decode("utf-8"))

    # ------------------------------------------------------------ async jobs
    def submit_batch(self, batch: Union[BatchRequest, list]) -> str:
        """POST an async batch; returns its job id immediately."""
        batch = self._coerce_batch(batch)
        payload = self._json(
            "POST", "/v1/batch", batch.to_json(), {"mode": "async"}
        )
        return payload["job_id"]

    def job(self, job_id: str) -> dict:
        """The job status envelope (``kind == "job"``)."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def events(
        self, job_id: str, cursor: int = 0, timeout: Optional[float] = None
    ) -> dict:
        """One long-poll page of a job's event stream."""
        params: dict = {"cursor": cursor}
        if timeout is not None:
            params["timeout"] = timeout
        return self._json("GET", f"/v1/events/{job_id}", params=params)

    def iter_events(
        self, job_id: str, poll_timeout: float = 10.0
    ) -> Iterator[dict]:
        """Yield event pages until the job reports itself done."""
        cursor = 0
        while True:
            page = self.events(job_id, cursor=cursor, timeout=poll_timeout)
            if page["events"]:
                yield page
            cursor = page["cursor"]
            if page["done"]:
                return

    def wait_batch(
        self, job_id: str, poll_timeout: float = 10.0
    ) -> BatchResponse:
        """Block (via the event long-poll) until a job finishes, then
        return its decoded batch response.  A failed job raises
        :class:`ServerError` with the job's recorded error envelope."""
        for _ in self.iter_events(job_id, poll_timeout=poll_timeout):
            pass
        envelope = self.job(job_id)
        if envelope["status"] == "error" or envelope["response"] is None:
            error = envelope.get("error") or {}
            raise ServerError(error.get("status", 500), error)
        wire = dict(envelope["response"])
        return BatchResponse.from_wire(wire)

    @staticmethod
    def _coerce_batch(batch: Union[BatchRequest, list]) -> BatchRequest:
        if isinstance(batch, BatchRequest):
            return batch
        return BatchRequest(
            requests=tuple(
                r
                if isinstance(r, SynthesisRequest)
                else SynthesisRequest.from_target(r)
                for r in batch
            )
        )

    def __repr__(self) -> str:
        return f"ServiceClient({self.host!r}, {self.port})"
