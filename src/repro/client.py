"""``repro.client`` — a stdlib HTTP client for the ``janus serve`` API.

:class:`ServiceClient` wraps ``http.client`` (no third-party
dependencies, matching the server) and speaks the same
:mod:`repro.api.schema` dataclasses as every other frontend: requests go
out as their canonical JSON, responses come back re-validated through
``from_json``, so a round-trip through the service is type-checked at
both ends::

    from repro.client import ServiceClient

    client = ServiceClient("127.0.0.1", 8080)
    response = client.synthesize("ab + a'b'c")      # SynthesisResponse
    print(response.shape, response.size)

    job_id = client.submit_batch([...])             # async batch
    for page in client.iter_events(job_id):         # long-poll pages
        print(page["events"])
    batch = client.wait_batch(job_id)               # BatchResponse

Error responses (the server's structured ``error`` envelope) raise
:class:`ServerError` carrying the HTTP status and the decoded payload.
Raw-byte accessors (:meth:`request_raw`) are exposed for tests that
assert exact wire bytes.

The client keeps one HTTP/1.1 connection alive **per thread** and
reuses it across calls (a fresh socket per request used to triple the
cost of warm cache hits); a socket the server has since closed is
detected on the next use and replaced with one transparent retry.  Pass
``keep_alive=False`` to restore the old connection-per-call behaviour,
and use the client as a context manager (or call :meth:`close`) to drop
the calling thread's socket eagerly.
"""

from __future__ import annotations

import json
import socket
import threading
from http.client import (
    BadStatusLine,
    HTTPConnection,
    HTTPResponse,
    RemoteDisconnected,
)
from typing import Iterator, Optional, Union
from urllib.parse import urlencode

from repro.api.schema import (
    BatchRequest,
    BatchResponse,
    SynthesisRequest,
    SynthesisResponse,
)
from repro.api.session import TargetLike
from repro.errors import ApiError

__all__ = ["ServiceClient", "ServerError"]


class ServerError(ApiError):
    """An error envelope returned by the service.

    ``status`` is the HTTP status code; ``payload`` the decoded error
    wire form (``kind == "error"``), when the body was JSON at all.
    """

    def __init__(self, status: int, payload: Optional[dict]) -> None:
        message = (payload or {}).get("error") or f"HTTP {status}"
        super().__init__(f"[{status}] {message}")
        self.status = status
        self.payload = payload or {}


#: Exceptions that mean "the reused socket went stale under us" — the
#: server (or a proxy) closed a kept-alive connection between requests.
#: Safe to retry once on a fresh socket: the failure happened before any
#: response bytes arrived, so the server never started an answer.
_STALE_ERRORS = (
    RemoteDisconnected,
    BadStatusLine,
    BrokenPipeError,
    ConnectionResetError,
    ConnectionAbortedError,
)


class _NoDelayConnection(HTTPConnection):
    """HTTPConnection with Nagle off.

    A request goes out as separate header and body writes; with Nagle
    on, the body write of a kept-alive exchange can stall ~40ms behind
    the server's delayed ACK.  (The asyncio transport and the threaded
    server's handler already disable Nagle on their side.)
    """

    def connect(self) -> None:
        super().connect()
        try:
            self.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # non-TCP or exotic stack: latency, not correctness


class ServiceClient:
    """A thin keep-alive client for one server address.

    Thread-safe: each thread gets its own persistent connection, so
    concurrent callers never interleave on one socket.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        timeout: float = 120.0,
        keep_alive: bool = True,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.keep_alive = keep_alive
        self._local = threading.local()

    # ------------------------------------------------------------ transport
    def _checkout(self) -> tuple[HTTPConnection, bool]:
        """This thread's connection; ``(conn, reused)``."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn, True
        conn = _NoDelayConnection(
            self.host, self.port, timeout=self.timeout
        )
        if self.keep_alive:
            self._local.conn = conn
        return conn, False

    def _discard(self, conn: HTTPConnection) -> None:
        conn.close()
        if getattr(self._local, "conn", None) is conn:
            self._local.conn = None

    def _settle(self, conn: HTTPConnection, response: HTTPResponse) -> None:
        """Called with the response fully read: keep or drop the socket."""
        if not self.keep_alive or response.will_close:
            self._discard(conn)

    def _exchange(
        self, method: str, path: str, body: Optional[bytes]
    ) -> tuple[HTTPConnection, HTTPResponse]:
        """Issue one request, transparently replacing a stale socket."""
        headers = {"Content-Type": "application/json"} if body else {}
        conn, reused = self._checkout()
        try:
            conn.request(method, path, body=body, headers=headers)
            return conn, conn.getresponse()
        except _STALE_ERRORS:
            self._discard(conn)
            if not reused:
                raise  # a fresh socket failing is a real error
        except OSError:
            self._discard(conn)
            raise
        # One retry on a fresh socket (the kept-alive one had gone stale).
        conn, _ = self._checkout()
        try:
            conn.request(method, path, body=body, headers=headers)
            return conn, conn.getresponse()
        except (OSError, BadStatusLine):
            self._discard(conn)
            raise

    def request_raw(
        self,
        method: str,
        path: str,
        body: Union[str, bytes, None] = None,
        params: Optional[dict] = None,
    ) -> tuple[int, bytes]:
        """One HTTP exchange; returns ``(status, body bytes)`` verbatim."""
        if params:
            path = f"{path}?{urlencode(params)}"
        if isinstance(body, str):
            body = body.encode("utf-8")
        conn, response = self._exchange(method, path, body)
        try:
            raw = response.read()
        except OSError:
            self._discard(conn)
            raise
        self._settle(conn, response)
        return response.status, raw

    def request_stream(
        self,
        method: str,
        path: str,
        body: Union[str, bytes, None] = None,
        params: Optional[dict] = None,
    ) -> Iterator[bytes]:
        """One exchange whose response body is yielded line by line.

        For the server's ``?stream=1`` NDJSON responses (``http.client``
        undoes the chunked framing).  An error status raises
        :class:`ServerError` before anything is yielded.  The socket is
        reusable only when the stream is fully consumed; abandoning the
        iterator early drops it.
        """
        if params:
            path = f"{path}?{urlencode(params)}"
        if isinstance(body, str):
            body = body.encode("utf-8")
        conn, response = self._exchange(method, path, body)
        if response.status >= 400:
            try:
                raw = response.read()
            except OSError:
                self._discard(conn)
                raise
            self._settle(conn, response)
            self._raise_for_status(response.status, raw)
        done = False
        try:
            while True:
                line = response.readline()
                if not line:
                    break
                yield line.rstrip(b"\n")
            done = True
        finally:
            if done:
                self._settle(conn, response)
            else:  # abandoned or failed mid-stream: socket is desynced
                self._discard(conn)

    def close(self) -> None:
        """Drop the calling thread's kept-alive connection, if any."""
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            self._discard(conn)

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    @staticmethod
    def _raise_for_status(status: int, raw: bytes) -> None:
        if status < 400:
            return
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError:
            payload = None
        raise ServerError(status, payload)

    def _json(
        self,
        method: str,
        path: str,
        body: Union[str, bytes, None] = None,
        params: Optional[dict] = None,
    ) -> dict:
        status, raw = self.request_raw(method, path, body, params)
        self._raise_for_status(status, raw)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError:
            payload = None
        if not isinstance(payload, dict):
            raise ServerError(status, {"error": "non-JSON response body"})
        return payload

    @staticmethod
    def _knobs(
        backend: Optional[str],
        timeout: Optional[float],
        jobs: Optional[int],
    ) -> dict:
        params = {}
        if backend is not None:
            params["backend"] = backend
        if timeout is not None:
            params["timeout"] = timeout
        if jobs is not None:
            params["jobs"] = jobs
        return params

    # ------------------------------------------------------------ endpoints
    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def backends(self) -> list[str]:
        return self._json("GET", "/v1/backends")["backends"]

    def cache_stats(self) -> dict:
        return self._json("GET", "/v1/cache/stats")

    def synthesize(
        self,
        target: Union[SynthesisRequest, TargetLike],
        name: str = "f",
        backend: Optional[str] = None,
        timeout: Optional[float] = None,
        jobs: Optional[int] = None,
    ) -> SynthesisResponse:
        """POST one synthesis job; returns the decoded response.

        ``target`` may be a prepared :class:`SynthesisRequest` or any raw
        target form the schema accepts.  ``backend``/``timeout``/``jobs``
        become the server's per-request query knobs.
        """
        if not isinstance(target, SynthesisRequest):
            target = SynthesisRequest.from_target(target, name=name)
        status, raw = self.request_raw(
            "POST",
            "/v1/synthesize",
            target.to_json(),
            self._knobs(backend, timeout, jobs) or None,
        )
        self._raise_for_status(status, raw)
        return SynthesisResponse.from_json(raw.decode("utf-8"))

    def stream_synthesize(
        self,
        target: Union[SynthesisRequest, TargetLike],
        name: str = "f",
        backend: Optional[str] = None,
        timeout: Optional[float] = None,
        jobs: Optional[int] = None,
    ) -> Iterator[dict]:
        """POST one synthesis with ``?stream=1``: yield its progress
        events as wire dicts (each carries an ``event`` tag) while it
        runs, ending with the final ``synthesis_response`` wire dict.  A
        failure mid-run arrives as a trailing error envelope, raised as
        :class:`ServerError` (the transfer itself stays HTTP 200 — the
        status line is sent before the outcome is known).
        """
        if not isinstance(target, SynthesisRequest):
            target = SynthesisRequest.from_target(target, name=name)
        params = self._knobs(backend, timeout, jobs)
        params["stream"] = 1
        for line in self.request_stream(
            "POST", "/v1/synthesize", target.to_json(), params
        ):
            payload = json.loads(line)
            if payload.get("kind") == "error":
                raise ServerError(payload.get("status", 500), payload)
            yield payload

    def run_batch(
        self,
        batch: Union[BatchRequest, list],
        timeout: Optional[float] = None,
    ) -> BatchResponse:
        """POST a synchronous batch; returns the decoded batch response."""
        batch = self._coerce_batch(batch)
        status, raw = self.request_raw(
            "POST",
            "/v1/batch",
            batch.to_json(),
            {"timeout": timeout} if timeout is not None else None,
        )
        self._raise_for_status(status, raw)
        return BatchResponse.from_json(raw.decode("utf-8"))

    # ------------------------------------------------------------ async jobs
    def submit_batch(self, batch: Union[BatchRequest, list]) -> str:
        """POST an async batch; returns its job id immediately."""
        batch = self._coerce_batch(batch)
        payload = self._json(
            "POST", "/v1/batch", batch.to_json(), {"mode": "async"}
        )
        return payload["job_id"]

    def job(self, job_id: str) -> dict:
        """The job status envelope (``kind == "job"``)."""
        return self._json("GET", f"/v1/jobs/{job_id}")

    def events(
        self, job_id: str, cursor: int = 0, timeout: Optional[float] = None
    ) -> dict:
        """One long-poll page of a job's event stream."""
        params: dict = {"cursor": cursor}
        if timeout is not None:
            params["timeout"] = timeout
        return self._json("GET", f"/v1/events/{job_id}", params=params)

    def iter_events(
        self, job_id: str, poll_timeout: float = 10.0
    ) -> Iterator[dict]:
        """Yield event pages until the job reports itself done."""
        cursor = 0
        while True:
            page = self.events(job_id, cursor=cursor, timeout=poll_timeout)
            if page["events"]:
                yield page
            cursor = page["cursor"]
            if page["done"]:
                return

    def wait_batch(
        self, job_id: str, poll_timeout: float = 10.0
    ) -> BatchResponse:
        """Block (via the event long-poll) until a job finishes, then
        return its decoded batch response.  A failed job raises
        :class:`ServerError` with the job's recorded error envelope."""
        for _ in self.iter_events(job_id, poll_timeout=poll_timeout):
            pass
        envelope = self.job(job_id)
        if envelope["status"] == "error" or envelope["response"] is None:
            error = envelope.get("error") or {}
            raise ServerError(error.get("status", 500), error)
        wire = dict(envelope["response"])
        return BatchResponse.from_wire(wire)

    @staticmethod
    def _coerce_batch(batch: Union[BatchRequest, list]) -> BatchRequest:
        if isinstance(batch, BatchRequest):
            return batch
        return BatchRequest(
            requests=tuple(
                r
                if isinstance(r, SynthesisRequest)
                else SynthesisRequest.from_target(r)
                for r in batch
            )
        )

    def __repr__(self) -> str:
        return f"ServiceClient({self.host!r}, {self.port})"
