#!/usr/bin/env python
"""Cold vs incremental LM probing on the Table II instances.

Two comparisons, one correctness contract:

1. **End-to-end synthesis** — every instance is synthesized twice, with
   the stateless :class:`~repro.core.janus.SerialProber` (a fresh CNF
   and a cold ``CdclSolver`` per probe — the pre-incremental code path)
   and with the :class:`~repro.core.janus.IncrementalProber` (one live
   solver per instance: memoized repeats, shape-domination pruning,
   family probes under selector assumptions, assumption-core widening).
   The two results must be **byte-identical** — same lattice entries,
   shape, size and bounds — for every instance; this is asserted, not
   sampled.  Totals (SAT propagations, wall clock) are reported for
   both paths.

2. **Realizability frontier** — the bulk-probing workload the
   incremental engine is built for: for every instance and every row
   count, binary-search the minimal realizable width
   (``fit_columns``-style).  The cold side answers each query
   statelessly; the incremental side runs the same queries through
   :meth:`IncrementalProber.decide`, where an instance-lifetime solver
   plus the two monotone shortcuts (a refuted shape refutes everything
   below it, a found lattice realizes everything above it) answer most
   of the grid for free.  Frontiers are asserted identical, and the
   aggregate propagation ratio is the bench's headline number — the
   acceptance bar is >= 1.5x fewer propagations (``--min-ratio``).

Propagation counts are exact and deterministic (conflict-budgeted
probes, no wall-clock limit), so the ratio is reproducible across
machines; wall-clock speedup is reported alongside.  Results are
written to ``BENCH_pr4.json`` (``--json-out``) for the CI perf-smoke
artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_incremental.py --limit 6
    PYTHONPATH=src python benchmarks/bench_incremental.py \
        --limit 4 --max-conflicts 8000 --json-out BENCH_pr4.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from repro.bench.instances import PAPER_TABLE2, build_instance
from repro.bench.runner import profile_names
from repro.core.janus import (
    IncrementalProber,
    JanusOptions,
    SERIAL_PROBER,
    synthesize,
)
from repro.core.structural import structural_check
from repro.lattice.paths import left_right_paths8, top_bottom_paths
from repro.sat import solver as sat_solver


class _PropagationMeter:
    """Process-wide propagation counter: sums the stats of every solver
    constructed while the meter is active (probes inside ``ub_ds``
    subcalls included, which per-result attempt lists miss)."""

    def __init__(self) -> None:
        self._stats: list = []
        self._orig_init = None

    def __enter__(self) -> "_PropagationMeter":
        self._orig_init = sat_solver.CdclSolver.__init__
        stats_list = self._stats
        orig = self._orig_init

        def counting_init(solver, *args, **kwargs):
            orig(solver, *args, **kwargs)
            stats_list.append(solver.stats)

        sat_solver.CdclSolver.__init__ = counting_init
        return self

    def __exit__(self, *exc) -> None:
        sat_solver.CdclSolver.__init__ = self._orig_init

    @property
    def propagations(self) -> int:
        return sum(s.propagations for s in self._stats)


def _identical(a, b) -> bool:
    return (
        a.assignment.entries == b.assignment.entries
        and a.shape == b.shape
        and a.size == b.size
        and a.lower_bound == b.lower_bound
        and a.initial_upper_bound == b.initial_upper_bound
        and a.upper_bounds == b.upper_bounds
    )


def _frontier(spec, options, probe, rmax: int, cmax: int) -> dict:
    """Minimal realizable width per row count via binary search."""
    out = {}
    for rows in range(1, rmax + 1):
        if probe(spec, rows, cmax, options) != "sat":
            out[rows] = None
            continue
        lo, hi, best = 1, cmax - 1, cmax
        while lo <= hi:
            mid = (lo + hi) // 2
            if probe(spec, rows, mid, options) == "sat":
                best, hi = mid, mid - 1
            else:
                lo = mid + 1
        out[rows] = best
    return out


def _cold_decide(spec, rows, cols, options) -> str:
    """Stateless realizability query: the pre-incremental probe path."""
    if not structural_check(spec, rows, cols):
        return "unsat"
    if (
        len(top_bottom_paths(rows, cols)) > options.max_lattice_products
        and len(left_right_paths8(rows, cols)) > options.max_lattice_products
    ):
        return "unknown"
    from repro.core.janus import solve_lm

    return solve_lm(spec, rows, cols, options).status


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="fast", choices=("fast", "medium", "full"))
    parser.add_argument("--limit", type=int, default=6,
                        help="use only the first N instances (0 = all)")
    parser.add_argument("--max-conflicts", type=int, default=30_000,
                        help="per-probe conflict budget (deterministic; no "
                        "wall-clock limit so counts reproduce everywhere)")
    parser.add_argument("--min-ratio", type=float, default=1.5,
                        help="fail unless the frontier workload shows at "
                        "least this propagation ratio")
    parser.add_argument("--json-out", default=None,
                        help="write machine-readable results (BENCH_pr4.json)")
    parser.add_argument("--generated", default=None, metavar="KINDS",
                        help="use the seeded generator workload instead of "
                        "the paper instances: a family kind, comma list, "
                        "or 'mixed' (see janus gen)")
    parser.add_argument("--gen-level", type=int, default=1,
                        help="generator difficulty-ladder level (0..4)")
    parser.add_argument("--gen-seed", type=int, default=0,
                        help="generator base seed")
    parser.add_argument("--gen-count", type=int, default=2,
                        help="generated instances per family kind")
    args = parser.parse_args(argv)

    if args.generated:
        from repro.gen import generated_specs

        gen_specs = generated_specs(
            args.generated, level=args.gen_level,
            base_seed=args.gen_seed, count=args.gen_count,
        )
        if args.limit:
            gen_specs = gen_specs[: args.limit]
        by_spec = {spec.name: spec for spec in gen_specs}
        names = [spec.name for spec in gen_specs]
    else:
        by_name = {r.name: r for r in PAPER_TABLE2}
        names = sorted(
            profile_names(args.profile),
            key=lambda n: (by_name[n].cpu_janus, by_name[n].num_inputs, n),
        )
        if args.limit:
            names = names[: args.limit]
        by_spec = None

    def instance(name):
        return by_spec[name] if by_spec is not None else build_instance(name)

    options = JanusOptions(max_conflicts=args.max_conflicts)
    report = {"options": {"profile": args.profile, "limit": args.limit,
                          "max_conflicts": args.max_conflicts,
                          "generated": args.generated,
                          "gen_level": args.gen_level,
                          "gen_seed": args.gen_seed},
              "instances": [], "frontier": [], "synthesis": {}}
    failures = 0

    # ---------------------------------------------------- end-to-end runs
    print(f"== end-to-end synthesis ({len(names)} instances, byte-identity "
          "asserted per instance)")
    tot_cold_p = tot_inc_p = 0
    tot_cold_t = tot_inc_t = 0.0
    for name in names:
        spec = instance(name)
        with _PropagationMeter() as meter:
            t0 = time.monotonic()
            cold = synthesize(spec, name=name, options=options,
                              prober=SERIAL_PROBER)
            cold_t = time.monotonic() - t0
            cold_p = meter.propagations
        prober = IncrementalProber()
        with _PropagationMeter() as meter:
            t0 = time.monotonic()
            warm = synthesize(spec, name=name, options=options, prober=prober)
            inc_t = time.monotonic() - t0
            inc_p = meter.propagations
        ok = _identical(cold, warm)
        if not ok:
            failures += 1
            print(f"MISMATCH {name}: cold {cold.shape}/{cold.size} vs "
                  f"incremental {warm.shape}/{warm.size}")
        tot_cold_p += cold_p
        tot_inc_p += inc_p
        tot_cold_t += cold_t
        tot_inc_t += inc_t
        ratio = cold_p / inc_p if inc_p else float("inf")
        print(f"{name:>12}: cold {cold_p:9d} props/{cold_t:6.1f}s | "
              f"incremental {inc_p:9d} props/{inc_t:6.1f}s | {ratio:5.2f}x | "
              f"identical={ok}")
        report["instances"].append({
            "name": name, "identical": ok,
            "cold": {"propagations": cold_p, "wall": cold_t},
            "incremental": {"propagations": inc_p, "wall": inc_t,
                            "reuse": prober.stats.__dict__.copy()},
        })
    e2e_ratio = tot_cold_p / tot_inc_p if tot_inc_p else float("inf")
    e2e_speedup = tot_cold_t / tot_inc_t if tot_inc_t else float("inf")
    print(f"{'total':>12}: cold {tot_cold_p} props/{tot_cold_t:.1f}s | "
          f"incremental {tot_inc_p} props/{tot_inc_t:.1f}s | "
          f"{e2e_ratio:.2f}x props, {e2e_speedup:.2f}x wall")
    report["synthesis"] = {
        "cold_propagations": tot_cold_p, "incremental_propagations": tot_inc_p,
        "propagation_ratio": e2e_ratio, "wall_speedup": e2e_speedup,
    }

    # ------------------------------------------------- frontier workload
    print("\n== realizability frontier (binary-searched minimal width per "
          "row count; frontiers asserted identical)")
    f_cold_p = f_inc_p = 0
    f_cold_t = f_inc_t = 0.0
    for name in names:
        spec = instance(name)
        base = synthesize(spec, name=name, options=options)
        rmax = min(base.rows + 2, 6)
        cmax = min(max(base.cols + 2, 4), 8)
        with _PropagationMeter() as meter:
            t0 = time.monotonic()
            cold_frontier = _frontier(spec, options, _cold_decide, rmax, cmax)
            cold_t = time.monotonic() - t0
            cold_p = meter.propagations
        prober = IncrementalProber()

        def inc_decide(spec, rows, cols, options):
            return prober.decide(spec, rows, cols, options)

        with _PropagationMeter() as meter:
            t0 = time.monotonic()
            inc_frontier = _frontier(spec, options, inc_decide, rmax, cmax)
            inc_t = time.monotonic() - t0
            inc_p = meter.propagations
        ok = cold_frontier == inc_frontier
        if not ok:
            failures += 1
            print(f"MISMATCH {name}: frontier {cold_frontier} vs {inc_frontier}")
        f_cold_p += cold_p
        f_inc_p += inc_p
        f_cold_t += cold_t
        f_inc_t += inc_t
        ratio = cold_p / inc_p if inc_p else float("inf")
        print(f"{name:>12}: cold {cold_p:9d} props/{cold_t:6.1f}s | "
              f"incremental {inc_p:9d} props/{inc_t:6.1f}s | {ratio:5.2f}x | "
              f"identical={ok}")
        report["frontier"].append({
            "name": name, "identical": ok, "rmax": rmax, "cmax": cmax,
            "cold": {"propagations": cold_p, "wall": cold_t},
            "incremental": {"propagations": inc_p, "wall": inc_t},
        })
    ratio = f_cold_p / f_inc_p if f_inc_p else float("inf")
    speedup = f_cold_t / f_inc_t if f_inc_t else float("inf")
    print(f"{'total':>12}: cold {f_cold_p} props/{f_cold_t:.1f}s | "
          f"incremental {f_inc_p} props/{f_inc_t:.1f}s | "
          f"{ratio:.2f}x props, {speedup:.2f}x wall")
    report["frontier_totals"] = {
        "cold_propagations": f_cold_p, "incremental_propagations": f_inc_p,
        "propagation_ratio": ratio, "wall_speedup": speedup,
        "min_ratio": args.min_ratio,
    }

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"\nwrote {args.json_out}")

    if ratio < args.min_ratio:
        print(f"\nFAILED: frontier propagation ratio {ratio:.2f}x is below "
              f"the {args.min_ratio}x target")
        failures += 1
    if failures:
        print(f"\nFAILED: {failures} check failure(s)")
        return 1
    print(f"\nOK: byte-identical everywhere; frontier probing {ratio:.2f}x "
          f"fewer propagations ({speedup:.2f}x wall), end-to-end "
          f"{e2e_ratio:.2f}x fewer propagations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
