"""Table III: multiple functions on a single lattice.

Compares the straight-forward merge (part 1 of Section III-C) against
JANUS-MF (part 2, row shrinking) on the paper's three benchmarks.  squar5
is rebuilt exactly from arithmetic; misex1 and bw use the reconstructed
instance suite.  The asserted shape claim: JANUS-MF never exceeds the
straight-forward merge (the paper reports gains up to 32%).

bw's 28 outputs make it the slow one; it runs in medium/full profiles.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.instances import PAPER_TABLE3, build_multi_instance
from repro.core.multi import merge_straightforward, synthesize_multi

_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "fast")
# misex1's 6/7-input outputs and bw's 28 outputs take minutes each in pure
# Python, so the fast profile sticks to the exactly-reconstructed squar5.
_NAMES = {
    "fast": ["squar5"],
    "medium": ["squar5", "misex1"],
    "full": ["squar5", "misex1", "bw"],
}[_PROFILE]


@pytest.mark.parametrize("name", _NAMES)
def bench_table3_straightforward(benchmark, name, options):
    specs = list(build_multi_instance(name))
    result = benchmark.pedantic(
        merge_straightforward, args=(specs, options), rounds=1, iterations=1
    )
    paper = PAPER_TABLE3[name]
    benchmark.extra_info.update(
        shape=result.shape, size=result.size,
        paper_sol=paper["sf_sol"], paper_size=paper["sf_size"],
    )
    assert result.verify()


@pytest.mark.parametrize("name", _NAMES)
def bench_table3_janus_mf(benchmark, name, options):
    specs = list(build_multi_instance(name))
    sf = merge_straightforward(specs, options)
    result = benchmark.pedantic(
        synthesize_multi, args=(specs,), kwargs={"options": options},
        rounds=1, iterations=1,
    )
    paper = PAPER_TABLE3[name]
    gain = 100 * (1 - result.size / sf.size)
    benchmark.extra_info.update(
        shape=result.shape, size=result.size, sf_size=sf.size,
        gain_percent=round(gain, 1),
        paper_sol=paper["mf_sol"], paper_size=paper["mf_size"],
    )
    assert result.verify()
    assert result.size <= sf.size
