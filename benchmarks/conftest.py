"""Shared benchmark configuration.

Benchmarks default to the ``fast`` profile (instances with at most 7
inputs, modest SAT budgets).  Set ``REPRO_BENCH_PROFILE=medium`` or
``full`` to widen coverage — ``full`` runs all 48 Table II instances and
can take hours in pure Python, mirroring the authors' 6-hour budgets.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.runner import default_options, profile_names


def pytest_report_header(config):
    profile = os.environ.get("REPRO_BENCH_PROFILE", "fast")
    return f"repro bench profile: {profile} ({len(profile_names(profile))} Table II instances)"


@pytest.fixture(scope="session")
def profile() -> str:
    return os.environ.get("REPRO_BENCH_PROFILE", "fast")


@pytest.fixture(scope="session")
def options(profile):
    return default_options(profile)


def run_once(benchmark, fn, *args, **kwargs):
    """Run a seconds-scale benchmark exactly once (no warmup rounds)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
