"""Table II: single-function synthesis across algorithms.

Per instance the harness regenerates the paper's columns: the function
signature, the initial bounds (lb / old ub / new ub) and the solutions of
JANUS and the baselines.  Published values ride along in ``extra_info``
so the JSON export is self-describing.

Profiles (``REPRO_BENCH_PROFILE``):

* fast   — <=7-input instances, JANUS only (default);
* medium — <=8-input instances, JANUS + heuristic baseline;
* full   — all 48 instances, all five algorithms (very slow, hours).

The paper's headline claims asserted here:

* the new upper bounds (IPS/IDPS/DS) are never worse than the old ones
  (DP/PS/DPS) and improve them substantially on average (42.8% in the
  paper);
* JANUS solutions never exceed the initial upper bound and never beat the
  structural lower bound;
* every reported lattice is verified against the target truth table.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.instances import PAPER_TABLE2, build_instance
from repro.bench.runner import (
    compute_bounds_report,
    profile_names,
    run_algorithm,
)

_PROFILE = os.environ.get("REPRO_BENCH_PROFILE", "fast")
_NAMES = profile_names(_PROFILE)
_ALGOS = {
    "fast": ("janus",),
    "medium": ("janus", "heuristic"),
    "full": ("janus", "exact", "approx", "heuristic", "pcircuit"),
}[_PROFILE]

_PAPER = {row.name: row for row in PAPER_TABLE2}


@pytest.mark.parametrize("name", _NAMES)
def bench_table2_bounds(benchmark, name, options):
    spec = build_instance(name)
    report = benchmark.pedantic(
        compute_bounds_report, args=(spec, options), rounds=1, iterations=1
    )
    paper = _PAPER[name]
    benchmark.extra_info.update(
        lb=report.lb, old_ub=report.old_ub, new_ub=report.new_ub,
        paper_lb=paper.lb, paper_oub=paper.oub, paper_nub=paper.nub,
    )
    assert report.lb <= report.new_ub <= report.old_ub


@pytest.mark.parametrize("algorithm", _ALGOS)
@pytest.mark.parametrize("name", _NAMES)
def bench_table2_solve(benchmark, name, algorithm, options):
    spec = build_instance(name)
    result = benchmark.pedantic(
        run_algorithm, args=(algorithm, spec, options), rounds=1, iterations=1
    )
    paper = _PAPER[name]
    benchmark.extra_info.update(
        shape=result.shape,
        size=result.size,
        paper_janus=paper.sol_janus,
        paper_exact=paper.sol_exact,
        signature_exact=not spec.name.startswith("~"),
    )
    bounds = compute_bounds_report(spec, options)
    assert bounds.lb <= result.size <= max(bounds.new_ub, result.size)
    if algorithm == "janus":
        assert result.size <= bounds.new_ub
