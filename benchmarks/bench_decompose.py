"""Decomposition baselines vs plain JANUS ([8] D-reducible, [10]
autosymmetric).

The related-work methods shrink the lattice at the price of external
EXOR logic.  Each bench synthesizes the same target three ways and
records lattice sizes and gate counts, reproducing the qualitative
claim in the paper's Section II-B: decomposition helps exactly when the
function has the right structure.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.boolf import TruthTable
from repro.core import (
    JanusOptions,
    make_spec,
    synthesize,
    synthesize_autosymmetric,
    synthesize_dreducible,
)

OPTIONS = JanusOptions(max_conflicts=40_000)


def structured_target() -> TruthTable:
    """(a^b)(c^d)e — autosymmetric (k=2) and D-reducible."""
    values = np.zeros(32, dtype=bool)
    for m in range(32):
        a, b, c, d, e = (m >> i & 1 for i in range(5))
        values[m] = bool((a ^ b) and (c ^ d) and e)
    return TruthTable(values, 5)


def unstructured_target() -> TruthTable:
    """Majority-of-5: neither autosymmetric nor D-reducible."""
    values = np.array(
        [bin(m).count("1") >= 3 for m in range(32)], dtype=bool
    )
    return TruthTable(values, 5)


TARGETS = {
    "structured": structured_target,
    "unstructured": unstructured_target,
}


@pytest.mark.parametrize("kind", sorted(TARGETS))
@pytest.mark.parametrize("method", ["janus", "autosymmetric", "dreducible"])
def bench_decompose(benchmark, kind, method):
    tt = TARGETS[kind]()

    def run():
        if method == "janus":
            result = synthesize(make_spec(tt, name=kind), options=OPTIONS)
            return result.size, 0
        if method == "autosymmetric":
            result = synthesize_autosymmetric(tt, options=OPTIONS, name=kind)
            return result.lattice_size, result.num_exor_gates
        result = synthesize_dreducible(tt, options=OPTIONS, name=kind)
        return result.lattice_size, result.num_exor_gates

    size, gates = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["lattice_size"] = size
    benchmark.extra_info["exor_gates"] = gates
    if kind == "structured" and method != "janus":
        # The engineered target must show a decomposition win.
        assert size <= 6
