#!/usr/bin/env python
"""Serial vs parallel vs warm-cache synthesis on the Table II instances.

Runs the same instance subset three ways and reports wall-clock totals:

1. **serial** — the seed code path (``run_table2`` with ``jobs=1``);
2. **parallel** — instances sharded across ``--jobs`` worker processes,
   candidate-shape races inside each worker's engine;
3. **warm** (only with ``--cache``) — a repeat parallel run against the
   now-populated result cache, which should perform no SAT work at all.

Results are checked for equality between the runs (sizes and shapes per
instance must match; the search is deterministic by construction), so
this doubles as an end-to-end regression test of the engine — CI runs
``--limit 2 --jobs 2``.

Speedup expectations: on an N-core machine with at least ``--jobs``
instances, the parallel run approaches ``jobs``-fold speedup (the target
is >= 2x at ``--jobs 4``).  On constrained hardware (fewer cores than
jobs — the script prints a note) the parallel totals are dominated by
process scheduling and no speedup can materialize; the warm-cache run
still demonstrates the caching win.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py --jobs 4 --limit 6
    PYTHONPATH=src python benchmarks/bench_parallel.py --cache /tmp/jc --limit 4
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Optional, Sequence

from repro.bench.instances import PAPER_TABLE2
from repro.bench.runner import default_options, profile_names, run_table2


def _timed_run(names, options, jobs, cache=None):
    start = time.monotonic()
    rows = run_table2(names, ("janus",), options, jobs=jobs, cache=cache)
    return rows, time.monotonic() - start


def _check_identical(label: str, base, other) -> int:
    mismatches = 0
    for b, o in zip(base, other):
        bj, oj = b.results["janus"], o.results["janus"]
        if (bj.size, bj.shape, bj.entries) != (oj.size, oj.shape, oj.entries):
            what = (
                "lattice entries differ"
                if (bj.size, bj.shape) == (oj.size, oj.shape)
                else f"serial {bj.shape}/{bj.size} vs {oj.shape}/{oj.size}"
            )
            print(f"MISMATCH [{label}] {b.name}: {what}")
            mismatches += 1
    return mismatches


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="fast", choices=("fast", "medium", "full"))
    parser.add_argument(
        "--limit", type=int, default=0, help="use only the first N instances"
    )
    parser.add_argument("--jobs", type=int, default=4, help="worker processes")
    parser.add_argument(
        "--cache", default=None, help="cache dir; adds a warm-cache third run"
    )
    parser.add_argument(
        "--max-conflicts",
        type=int,
        default=None,
        help="override the profile's per-probe conflict budget (also drops "
        "the wall-clock limit, making probes fully deterministic — used by "
        "the CI smoke run)",
    )
    args = parser.parse_args(argv)

    # Cheapest instances first (by the paper's published JANUS CPU), so
    # ``--limit N`` always selects a tractable subset — the CI smoke run
    # uses ``--limit 2``.
    by_name = {r.name: r for r in PAPER_TABLE2}
    names = sorted(
        profile_names(args.profile),
        key=lambda n: (by_name[n].cpu_janus, by_name[n].num_inputs, n),
    )
    if args.limit:
        names = names[: args.limit]
    options = default_options(args.profile)
    if args.max_conflicts is not None:
        from repro.core.janus import JanusOptions

        options = JanusOptions(max_conflicts=args.max_conflicts)
    cpus = os.cpu_count() or 1
    print(
        f"instances: {len(names)} ({args.profile} profile) | jobs: {args.jobs} "
        f"| cpus: {cpus}"
    )

    serial_rows, serial_s = _timed_run(names, options, jobs=1)
    print(f"serial    : {serial_s:8.2f}s")

    parallel_rows, parallel_s = _timed_run(
        names, options, jobs=args.jobs, cache=args.cache
    )
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"parallel  : {parallel_s:8.2f}s  ({speedup:.2f}x)")

    mismatches = _check_identical("parallel", serial_rows, parallel_rows)

    if args.cache:
        warm_rows, warm_s = _timed_run(
            names, options, jobs=args.jobs, cache=args.cache
        )
        warm_speedup = serial_s / warm_s if warm_s > 0 else float("inf")
        print(f"warm cache: {warm_s:8.2f}s  ({warm_speedup:.2f}x)")
        mismatches += _check_identical("warm", serial_rows, warm_rows)

    print()
    print(f"{'instance':>12} {'size':>5} {'serial CPU':>11} {'parallel CPU':>13}")
    for s, p in zip(serial_rows, parallel_rows):
        sj, pj = s.results["janus"], p.results["janus"]
        print(
            f"{s.name:>12} {sj.size:>5} {sj.wall_time:>10.2f}s {pj.wall_time:>12.2f}s"
        )

    if cpus < args.jobs:
        print(
            f"\nnote: only {cpus} CPU(s) available for {args.jobs} jobs — "
            "worker processes are time-sliced, so wall-clock speedup cannot "
            "reach the target on this hardware; results above still verify "
            "that the parallel path is byte-identical to the serial one."
        )

    if mismatches:
        print(f"\nFAILED: {mismatches} result mismatch(es)")
        return 1
    print("\nOK: parallel results identical to serial")
    return 0


if __name__ == "__main__":
    sys.exit(main())
