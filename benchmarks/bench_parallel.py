#!/usr/bin/env python
"""Serial vs parallel vs warm-cache synthesis on the Table II instances.

Runs the same instance subset several ways and reports wall-clock totals:

1. **serial** — the seed code path (``run_table2`` with ``jobs=1``);
2. **parallel** — instances sharded across ``--jobs`` worker processes,
   candidate-shape races and speculative next-midpoint prefetching
   inside each worker's engine;
3. **warm** (only with ``--cache``) — a repeat parallel run against the
   now-populated cache.  The suite-level layer serves whole results, so
   this run must perform *zero* SAT solver calls and *zero* upper-bound
   recomputations — asserted from the engines' own counters, not just
   timed;
4. **portfolio** (only with ``--portfolio``) — the eager paper encoding
   raced against the lazy CEGAR backend inside every probe.  Portfolio
   answers may be different (equally valid) lattices, so they are
   checked for *correctness* (each realizes its target) rather than
   byte-identity.

Results of runs 2 and 3 are checked for equality against run 1 (sizes,
shapes and lattice entries per instance must match; the search is
deterministic by construction), so this doubles as an end-to-end
regression test of the engine — CI runs ``--limit 2 --jobs 2``.

Speedup expectations: on an N-core machine with at least ``--jobs``
instances, the parallel run approaches ``jobs``-fold speedup (the target
is >= 2x at ``--jobs 4``).  On constrained hardware (fewer cores than
jobs — the script prints a note) the parallel totals are dominated by
process scheduling and no speedup can materialize; the warm-cache run
still demonstrates the caching win.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py --jobs 4 --limit 6
    PYTHONPATH=src python benchmarks/bench_parallel.py --cache /tmp/jc --limit 4
    PYTHONPATH=src python benchmarks/bench_parallel.py --portfolio --limit 4
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from repro.bench.instances import PAPER_TABLE2
from repro.bench.runner import default_options, profile_names, run_table2
from repro.engine import EngineStats, default_jobs
from repro.lattice.assignment import Entry, LatticeAssignment


def _timed_run(names, options, jobs, cache=None, portfolio=False):
    start = time.monotonic()
    rows = run_table2(
        names, ("janus",), options, jobs=jobs, cache=cache, portfolio=portfolio
    )
    return rows, time.monotonic() - start


def _check_identical(label: str, base, other) -> int:
    mismatches = 0
    for b, o in zip(base, other):
        bj, oj = b.results["janus"], o.results["janus"]
        if (bj.size, bj.shape, bj.entries) != (oj.size, oj.shape, oj.entries):
            what = (
                "lattice entries differ"
                if (bj.size, bj.shape) == (oj.size, oj.shape)
                else f"serial {bj.shape}/{bj.size} vs {oj.shape}/{oj.size}"
            )
            print(f"MISMATCH [{label}] {b.name}: {what}")
            mismatches += 1
    return mismatches


def _check_realizes(label: str, rows) -> int:
    """Each (possibly non-canonical) lattice must realize its target."""
    failures = 0
    for row in rows:
        aj = row.results["janus"]
        nrows, ncols = (int(x) for x in aj.shape.split("x"))
        entries = [
            Entry.lit(var, pos) if var is not None else Entry.const(pos)
            for var, pos in aj.entries
        ]
        la = LatticeAssignment(
            nrows, ncols, entries, row.spec.num_inputs, row.spec.name_list()
        )
        if not row.spec.accepts(la.realized_truthtable()):
            print(f"INVALID [{label}] {row.name}: lattice does not realize target")
            failures += 1
    return failures


def _engine_totals(rows) -> EngineStats:
    total = EngineStats()
    for row in rows:
        if row.engine:
            total.merge(row.engine)
    return total


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--profile", default="fast", choices=("fast", "medium", "full"))
    parser.add_argument(
        "--limit", type=int, default=0, help="use only the first N instances"
    )
    parser.add_argument("--jobs", type=int, default=4, help="worker processes")
    parser.add_argument(
        "--cache", default=None, help="cache dir; adds a warm-cache third run"
    )
    parser.add_argument(
        "--portfolio",
        action="store_true",
        help="add an eager-vs-CEGAR portfolio run (answers verified, not "
        "byte-compared: the race may find a different valid lattice)",
    )
    parser.add_argument(
        "--max-conflicts",
        type=int,
        default=None,
        help="override the profile's per-probe conflict budget (also drops "
        "the wall-clock limit, making probes fully deterministic — used by "
        "the CI smoke run)",
    )
    args = parser.parse_args(argv)

    # Cheapest instances first (by the paper's published JANUS CPU), so
    # ``--limit N`` always selects a tractable subset — the CI smoke run
    # uses ``--limit 2``.
    by_name = {r.name: r for r in PAPER_TABLE2}
    names = sorted(
        profile_names(args.profile),
        key=lambda n: (by_name[n].cpu_janus, by_name[n].num_inputs, n),
    )
    if args.limit:
        names = names[: args.limit]
    options = default_options(args.profile)
    if args.max_conflicts is not None:
        from repro.core.janus import JanusOptions

        options = JanusOptions(max_conflicts=args.max_conflicts)
    cpus = default_jobs()
    print(
        f"instances: {len(names)} ({args.profile} profile) | jobs: {args.jobs} "
        f"| available cpus: {cpus}"
    )

    serial_rows, serial_s = _timed_run(names, options, jobs=1)
    print(f"serial    : {serial_s:8.2f}s")

    parallel_rows, parallel_s = _timed_run(
        names, options, jobs=args.jobs, cache=args.cache
    )
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(f"parallel  : {parallel_s:8.2f}s  ({speedup:.2f}x)")

    failures = _check_identical("parallel", serial_rows, parallel_rows)

    if args.cache:
        warm_rows, warm_s = _timed_run(
            names, options, jobs=args.jobs, cache=args.cache
        )
        warm_speedup = serial_s / warm_s if warm_s > 0 else float("inf")
        totals = _engine_totals(warm_rows)
        print(
            f"warm cache: {warm_s:8.2f}s  ({warm_speedup:.2f}x)  "
            f"solver_calls={totals.solver_calls} "
            f"bound_calls={totals.bound_calls} "
            f"suite_hits={totals.suite_hits}"
        )
        failures += _check_identical("warm", serial_rows, warm_rows)
        # The acceptance bar for the suite-level cache: a warm run redoes
        # no search work at all.
        if totals.solver_calls != 0:
            print("FAILED: warm run performed SAT solver calls")
            failures += 1
        if totals.bound_calls != 0:
            print("FAILED: warm run recomputed upper bounds")
            failures += 1

    if args.portfolio:
        portfolio_rows, portfolio_s = _timed_run(
            names, options, jobs=args.jobs, portfolio=True
        )
        p_speedup = serial_s / portfolio_s if portfolio_s > 0 else float("inf")
        print(f"portfolio : {portfolio_s:8.2f}s  ({p_speedup:.2f}x)")
        failures += _check_realizes("portfolio", portfolio_rows)
        for s, p in zip(serial_rows, portfolio_rows):
            sj, pj = s.results["janus"], p.results["janus"]
            if sj.size != pj.size:
                print(
                    f"note: {s.name}: portfolio size {pj.size} vs "
                    f"deterministic {sj.size} (both valid)"
                )

    print()
    print(f"{'instance':>12} {'size':>5} {'serial CPU':>11} {'parallel CPU':>13}")
    for s, p in zip(serial_rows, parallel_rows):
        sj, pj = s.results["janus"], p.results["janus"]
        print(
            f"{s.name:>12} {sj.size:>5} {sj.wall_time:>10.2f}s {pj.wall_time:>12.2f}s"
        )

    if cpus < args.jobs:
        print(
            f"\nnote: only {cpus} CPU(s) available for {args.jobs} jobs — "
            "worker processes are time-sliced, so wall-clock speedup cannot "
            "reach the target on this hardware; results above still verify "
            "that the parallel path is byte-identical to the serial one."
        )

    if failures:
        print(f"\nFAILED: {failures} check failure(s)")
        return 1
    print("\nOK: parallel and warm runs identical to serial"
          + (", portfolio verified" if args.portfolio else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
