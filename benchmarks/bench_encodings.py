"""Ablation: exactly-one encodings inside the LM formulation.

The paper encodes "each lattice variable is assigned exactly one target
literal" with the quadratic pairwise AMO.  This bench swaps in the
sequential-counter and commander alternatives and measures (a) encoding
size and (b) end-to-end solve time of a representative LM instance, plus
a pure-constraint stress case (exactly-one over growing literal sets
under a forced-conflict workload).
"""

from __future__ import annotations

import pytest

from repro.core import EncodeOptions, best_encoding, make_spec
from repro.sat import CdclSolver, Cnf, exactly_one

METHODS = ("pairwise", "sequential", "commander")


@pytest.mark.parametrize("method", METHODS)
def bench_encodings_lm_instance(benchmark, method):
    """Encode + solve the Fig. 4 function on its optimal 3x4 lattice."""
    spec = make_spec("cd + c'd' + abe + a'b'e'", name="fig4")
    options = EncodeOptions(eo_method=method)

    def run():
        encoding, _ = best_encoding(spec, 3, 4, options)
        assert encoding is not None
        solver = CdclSolver(max_conflicts=200_000)
        for clause in encoding.cnf:
            solver.add_clause(clause)
        result = solver.solve()
        assert result.is_sat
        return encoding.cnf.num_vars, encoding.cnf.num_clauses

    num_vars, num_clauses = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["vars"] = num_vars
    benchmark.extra_info["clauses"] = num_clauses


@pytest.mark.parametrize("method", METHODS)
@pytest.mark.parametrize("group_size", [8, 24])
def bench_encodings_stress(benchmark, method, group_size):
    """20 exactly-one groups chained by equalities; forced UNSAT tail."""

    def run():
        cnf = Cnf()
        groups = [
            [cnf.pool.fresh() for _ in range(group_size)] for _ in range(20)
        ]
        for group in groups:
            exactly_one(cnf, group, method=method)
        # Chain: element 0 of each group mirrors element 0 of the next,
        # then force two distinct elements of the last group — UNSAT.
        for a, b in zip(groups, groups[1:]):
            cnf.add([-a[0], b[0]])
            cnf.add([a[0], -b[0]])
        cnf.add([groups[-1][0]])
        cnf.add([groups[-1][1]])
        solver = CdclSolver(max_conflicts=200_000)
        ok = True
        for clause in cnf:
            ok = solver.add_clause(clause) and ok
        assert not ok or solver.solve().is_unsat
        return cnf.num_clauses

    clauses = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["clauses"] = clauses
