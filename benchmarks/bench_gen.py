#!/usr/bin/env python
"""Learned portfolio dispatch on a generated mixed workload.

Two phases over the same seeded generator workload (``repro.gen``),
both in portfolio mode:

1. **Training** — every probe runs the blind race (eager encoding under
   each preset, plus the lazy CEGAR backend); decisive winners are
   recorded per instance class into a fresh
   :class:`~repro.gen.dispatch.DispatchTable`.
2. **Learned** — a second engine runs the identical workload consulting
   the warmed table: classes with enough one-sided evidence launch only
   their learned winner.

The headline numbers are probe launches (``EngineStats.dispatched``)
and the learned hit/miss split: with a warmed table the engine must
launch strictly fewer probes than the blind race did — that is asserted,
not sampled — while answers stay within the portfolio's documented
any-valid-lattice contract (sizes are compared against the serial
reference and must match; a mismatch is a real bug, not noise).

Results are written to ``BENCH_pr8.json`` (``--json-out``) for the CI
perf-smoke artifact.

Usage::

    PYTHONPATH=src python benchmarks/bench_gen.py
    PYTHONPATH=src python benchmarks/bench_gen.py \
        --families random-tt,pla-cover --level 1 --count 3 \
        --json-out BENCH_pr8.json
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time
from typing import Optional, Sequence

from repro.core.janus import JanusOptions, synthesize
from repro.engine.parallel import ParallelEngine
from repro.gen import DispatchTable, generated_specs

DEFAULT_FAMILIES = "random-tt,pla-cover,d-reducible"


def _run_phase(specs, options, presets, jobs, dispatch=None):
    t0 = time.monotonic()
    with ParallelEngine(
        jobs=jobs, portfolio=True, presets=presets, dispatch=dispatch
    ) as engine:
        sizes = {}
        for spec in specs:
            result = engine.synthesize(spec, name=spec.name, options=options)
            sizes[spec.name] = result.size
        stats = engine.stats
    return sizes, stats, time.monotonic() - t0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--families", default=DEFAULT_FAMILIES,
                        help="family kinds for the workload (comma list or "
                        "'mixed'; see janus gen --list)")
    parser.add_argument("--level", type=int, default=1,
                        help="difficulty-ladder level (0..4)")
    parser.add_argument("--seed", type=int, default=0,
                        help="generator base seed")
    parser.add_argument("--count", type=int, default=3,
                        help="instances per family kind")
    parser.add_argument("--jobs", type=int, default=2,
                        help="worker processes per engine")
    parser.add_argument("--presets", default="agile,default",
                        help="comma list of solver presets to race")
    parser.add_argument("--max-conflicts", type=int, default=20_000,
                        help="per-probe conflict budget (deterministic)")
    parser.add_argument("--min-wins", type=int, default=2,
                        help="dispatch evidence threshold (wins per class)")
    parser.add_argument("--json-out", default=None,
                        help="write machine-readable results (BENCH_pr8.json)")
    args = parser.parse_args(argv)

    presets = tuple(p.strip() for p in args.presets.split(",") if p.strip())
    options = JanusOptions(max_conflicts=args.max_conflicts)
    specs = generated_specs(
        args.families, level=args.level, base_seed=args.seed,
        count=args.count,
    )
    print(f"== learned dispatch on {len(specs)} generated instances "
          f"(families={args.families}, level={args.level}, "
          f"seed={args.seed}, presets={','.join(presets)})")

    table = DispatchTable(min_wins=args.min_wins, min_share=0.5)
    blind_sizes, blind, blind_t = _run_phase(
        specs, options, presets, args.jobs, dispatch=table
    )
    learned_sizes, learned, learned_t = _run_phase(
        specs, options, presets, args.jobs, dispatch=table
    )

    print(f"{'phase':>10}  {'probes':>7}  {'solver':>7}  "
          f"{'hits':>5}  {'miss':>5}  {'wall':>7}")
    for label, stats, wall in (
        ("training", blind, blind_t), ("learned", learned, learned_t)
    ):
        print(f"{label:>10}  {stats.dispatched:>7}  "
              f"{stats.solver_calls:>7}  {stats.dispatch_hits:>5}  "
              f"{stats.dispatch_misses:>5}  {wall:>6.1f}s")
    saved = blind.dispatched - learned.dispatched
    print(f"\nlearned rules: {len(table)} classes; "
          f"{saved} fewer probe launches than the blind race "
          f"({blind.dispatched} -> {learned.dispatched})")

    failures = 0
    if not learned.dispatch_hits:
        failures += 1
        print("FAIL: the warmed table produced no learned hits")
    if learned.dispatched >= blind.dispatched:
        failures += 1
        print("FAIL: learned dispatch did not reduce probe launches "
              f"({learned.dispatched} >= {blind.dispatched})")
    # Portfolio answers may be any valid lattice, but the minimal *size*
    # is unique — compare against the deterministic serial reference.
    for spec in specs:
        ref = synthesize(spec, name=spec.name, options=options)
        for label, sizes in (("blind", blind_sizes), ("learned", learned_sizes)):
            if sizes[spec.name] != ref.size:
                failures += 1
                print(f"FAIL: {label} size for {spec.name} is "
                      f"{sizes[spec.name]}, serial reference {ref.size}")

    report = {
        "options": {
            "families": args.families, "level": args.level,
            "seed": args.seed, "count": args.count,
            "presets": list(presets), "jobs": args.jobs,
            "max_conflicts": args.max_conflicts,
            "min_wins": args.min_wins,
        },
        "instances": [spec.name for spec in specs],
        "training": {**dataclasses.asdict(blind), "wall": blind_t},
        "learned": {**dataclasses.asdict(learned), "wall": learned_t},
        "dispatch_table": table.to_payload(),
        "probes_saved": saved,
        "ok": failures == 0,
    }
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
