"""Table I: number of products of the m x n lattice function and its dual.

Each benchmark enumerates the irredundant paths of one lattice shape and
asserts exact agreement with the published counts.  The fast profile stops
at 6x6 (the 7x7/7x8/8x8 entries enumerate millions of paths and belong to
the full profile).
"""

from __future__ import annotations

import os

import pytest

from repro.lattice.count import PAPER_TABLE1

_FULL = os.environ.get("REPRO_BENCH_PROFILE") == "full"
_MAX = 8 if _FULL else 6

SHAPES = [
    (m, n)
    for m in range(2, _MAX + 1)
    for n in range(2, _MAX + 1)
]


@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"{s[0]}x{s[1]}")
def bench_table1_products(benchmark, shape):
    m, n = shape

    def run():
        # Bypass the lru caches so the benchmark measures enumeration.
        from repro.lattice.grid import Grid
        from repro.lattice.paths import (
            iter_left_right_paths8,
            iter_top_bottom_paths,
        )

        grid = Grid(m, n)
        products = sum(1 for _ in iter_top_bottom_paths(grid))
        duals = sum(1 for _ in iter_left_right_paths8(grid))
        return products, duals

    got = benchmark.pedantic(run, rounds=1, iterations=1)
    want = PAPER_TABLE1[(m, n)]
    benchmark.extra_info["products"] = got[0]
    benchmark.extra_info["dual_products"] = got[1]
    benchmark.extra_info["paper"] = want
    assert got == want, f"{m}x{n}: got {got}, paper says {want}"
