#!/usr/bin/env python
"""Warm-cache request throughput of the ``janus serve`` HTTP service.

Starts an in-process :class:`repro.server.SynthesisServer` (loopback,
ephemeral port), then measures three phases with
:class:`repro.client.ServiceClient`:

1. **overhead** — ``GET /healthz`` round-trips: the pure HTTP floor
   (connection setup, routing, JSON envelope) with no synthesis at all;
2. **cold** — one ``POST /v1/synthesize`` per distinct Table II target,
   populating the suite cache;
3. **warm** — ``--requests`` repeats of those same requests.  Every one
   must be answered from the suite cache: the script snapshots
   ``GET /v1/cache/stats`` around the phase and **asserts the
   solver_calls and bound_calls deltas are zero** — the served counters,
   not client-side guesswork — and that suite_hits grew by the request
   count.

The headline number is the warm phase: requests per second and the
mean round-trip, which should sit within a small multiple of the
/healthz floor (the response body is bigger) — i.e. warm synthesis is
HTTP-overhead-bound, not SAT-bound.

``--ladder`` switches to the scale-out harness instead: a concurrency
ladder (default 1/4/16/64 clients) driven against **three** server
configurations — the threaded front-end, the asyncio front-end, and the
asyncio front-end sharded over ``--workers`` processes — reporting
per-level p50/p95/p99 latency, throughput, the saturation point (the
rung past which more clients stop buying throughput), and a
cold-vs-warm split, written canonically to ``BENCH_pr10.json``.
``--gate`` turns the scale-out acceptance check (async/multi-process
warm throughput beats threaded at >=16 clients) into a hard failure,
a warning, or nothing — warn is the CI default, hard gates being
reserved for dedicated hardware.

Usage::

    PYTHONPATH=src python benchmarks/bench_server.py
    PYTHONPATH=src python benchmarks/bench_server.py --limit 4 --requests 40
    PYTHONPATH=src python benchmarks/bench_server.py --pool 4 --json-out s.json
    PYTHONPATH=src python benchmarks/bench_server.py --ladder \
        --json-out BENCH_pr10.json --gate warn
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from typing import Optional, Sequence

from repro.api import RequestOptions, SynthesisRequest
from repro.bench.instances import build_instance
from repro.client import ServiceClient
from repro.server import make_server
from repro.server.multiproc import MultiProcessServer, multiprocess_supported

# Small Table II instances that synthesize in well under a second each —
# the point here is HTTP/cache behavior, not SAT heroics (heavier
# workloads are bench_parallel.py / bench_incremental.py territory).
DEFAULT_NAMES = "b12_03,c17_01,dc1_00,clpl_00"


def _requests_for(names, max_conflicts: int) -> list[SynthesisRequest]:
    options = RequestOptions(max_conflicts=max_conflicts)
    out = []
    for name in names:
        spec = build_instance(name)
        out.append(SynthesisRequest.from_target(spec, options=options))
    return out


def _timed(fn, n: int) -> tuple[float, list[float]]:
    laps = []
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        laps.append(time.perf_counter() - t0)
    return sum(laps), laps


# ---------------------------------------------------------------- the ladder
def _percentile(laps: list[float], q: float) -> float:
    """Nearest-rank percentile of ``laps`` (q in 0..100)."""
    if not laps:
        return 0.0
    ordered = sorted(laps)
    rank = min(len(ordered) - 1, max(0, int(round(q / 100 * len(ordered))) - 1))
    return ordered[rank]


def _run_level(
    address: tuple,
    requests: list[SynthesisRequest],
    clients: int,
    total_requests: int,
) -> dict:
    """One ladder rung: ``clients`` threads sharing ``total_requests``."""
    per_client = max(2, total_requests // clients)
    laps_by_thread: list[list[float]] = [[] for _ in range(clients)]
    errors: list[str] = []
    barrier = threading.Barrier(clients + 1)

    def drive(slot: int) -> None:
        client = ServiceClient(*address)
        try:
            barrier.wait()
            for i in range(per_client):
                request = requests[(slot + i) % len(requests)]
                t0 = time.perf_counter()
                response = client.synthesize(request)
                laps_by_thread[slot].append(time.perf_counter() - t0)
                if response.name != request.name:
                    errors.append(f"mangled response on slot {slot}")
        except Exception as exc:  # pragma: no cover - failure detail
            errors.append(f"slot {slot}: {type(exc).__name__}: {exc}")
        finally:
            client.close()

    threads = [
        threading.Thread(target=drive, args=(slot,), daemon=True)
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - t0

    laps = [lap for per in laps_by_thread for lap in per]
    done = len(laps)
    return {
        "clients": clients,
        "requests": done,
        "errors": errors,
        "wall_s": wall,
        "req_per_s": done / wall if wall else 0.0,
        "p50_ms": _percentile(laps, 50) * 1e3,
        "p95_ms": _percentile(laps, 95) * 1e3,
        "p99_ms": _percentile(laps, 99) * 1e3,
        "mean_ms": (sum(laps) / done * 1e3) if done else 0.0,
    }


def _saturation(levels: list[dict]) -> Optional[int]:
    """The rung past which adding clients stops buying throughput.

    The first client count whose successor improves req/s by less than
    10% (or regresses); None when throughput is still climbing at the
    top of the ladder.
    """
    for current, following in zip(levels, levels[1:]):
        if following["req_per_s"] < current["req_per_s"] * 1.10:
            return current["clients"]
    return None


def _ladder_one_server(
    label: str,
    server,
    requests: list[SynthesisRequest],
    clients_levels: list[int],
    requests_per_level: int,
) -> dict:
    """Cold phase + every ladder rung against one running server."""
    address = server.address
    client = ServiceClient(*address)
    cold_laps = []
    for request in requests:
        t0 = time.perf_counter()
        client.synthesize(request)
        cold_laps.append(time.perf_counter() - t0)
    client.close()
    print(f"  [{label}] cold: {sum(cold_laps):.3f}s over "
          f"{len(requests)} instances")
    levels = []
    for clients in clients_levels:
        level = _run_level(address, requests, clients, requests_per_level)
        levels.append(level)
        print(f"  [{label}] {clients:3d} clients: "
              f"{level['req_per_s']:8.1f} req/s  "
              f"p50 {level['p50_ms']:6.2f}ms  "
              f"p95 {level['p95_ms']:6.2f}ms  "
              f"p99 {level['p99_ms']:6.2f}ms"
              + (f"  ({len(level['errors'])} ERRORS)"
                 if level["errors"] else ""))
    return {
        "label": label,
        "cold_total_s": sum(cold_laps),
        "cold_laps_s": cold_laps,
        "levels": levels,
        "saturation_clients": _saturation(levels),
    }


def _warm_rate_at(result: dict, clients: int) -> Optional[float]:
    for level in result["levels"]:
        if level["clients"] == clients:
            return level["req_per_s"]
    return None


def run_ladder(args) -> int:
    names = [n.strip() for n in args.names.split(",") if n.strip()]
    if args.limit is not None:
        names = names[: args.limit]
    requests = _requests_for(names, args.max_conflicts)
    clients_levels = [int(c) for c in args.clients.split(",") if c.strip()]
    print(f"concurrency ladder: {len(requests)} instances, "
          f"levels {clients_levels}, {args.requests} requests/level, "
          f"pool={args.pool}, workers={args.workers}")

    results: list[dict] = []

    with make_server(
        port=0, pool=args.pool, jobs=args.jobs, frontend="threaded"
    ) as server:
        server.serve_background()
        results.append(_ladder_one_server(
            "threaded", server, requests, clients_levels, args.requests))

    with make_server(
        port=0, pool=args.pool, jobs=args.jobs, frontend="async"
    ) as server:
        server.serve_background()
        results.append(_ladder_one_server(
            "async", server, requests, clients_levels, args.requests))

    if args.workers > 1 and multiprocess_supported():
        with MultiProcessServer(
            workers=args.workers, pool=args.pool, jobs=args.jobs
        ) as server:
            server.start()
            results.append(_ladder_one_server(
                f"async-mp{args.workers}", server, requests,
                clients_levels, args.requests))
    else:
        print("  [async-mp] skipped (workers<=1 or no fork support)")

    # ------------------------------------------------------------ the gates
    failures: list[str] = []
    dropped = [
        f"[{r['label']}] {len(lvl['errors'])} errors at "
        f"{lvl['clients']} clients: {lvl['errors'][:3]}"
        for r in results for lvl in r["levels"] if lvl["errors"]
    ]
    failures.extend(dropped)

    threaded = results[0]
    scaleout = results[1:]
    gate_checks = []
    for clients in (c for c in clients_levels if c >= 16):
        base = _warm_rate_at(threaded, clients)
        best = max(
            (_warm_rate_at(r, clients) or 0.0) for r in scaleout
        ) if scaleout else 0.0
        ok = base is not None and best > base
        gate_checks.append({
            "clients": clients,
            "threaded_req_per_s": base,
            "best_scaleout_req_per_s": best,
            "ok": ok,
        })
        status = "ok" if ok else "BEHIND"
        print(f"gate @ {clients} clients: threaded {base:.1f} vs "
              f"best scale-out {best:.1f} req/s [{status}]")
        if not ok and args.gate != "off":
            failures.append(
                f"scale-out front-end not ahead of threaded at "
                f"{clients} clients ({best:.1f} <= {base:.1f} req/s)"
            )

    payload = {
        "bench": "server-ladder",
        "instances": list(names),
        "pool": args.pool,
        "jobs": args.jobs,
        "workers": args.workers,
        "clients_levels": clients_levels,
        "requests_per_level": args.requests,
        "servers": results,
        "gate_checks": gate_checks,
        "gate_mode": args.gate,
        "ok": not failures,
    }
    if args.json_out:
        with open(args.json_out, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json_out}")

    if failures:
        hard = args.gate == "hard" or dropped  # errors always fail
        for failure in failures:
            print(f"{'FAIL' if hard else 'WARN'}: {failure}",
                  file=sys.stderr)
        if hard:
            return 1
        print("gate mode is 'warn': reporting without failing")
        return 0
    print("OK: ladder complete; scale-out ahead of threaded at every "
          "gated level")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--names", default=DEFAULT_NAMES,
                        help="comma list of Table II instances to request")
    parser.add_argument("--limit", type=int, default=None,
                        help="use only the first N of --names")
    parser.add_argument("--requests", type=int, default=30,
                        help="warm-phase request count (round-robin)")
    parser.add_argument("--pool", type=int, default=2,
                        help="server session-pool size")
    parser.add_argument("--jobs", type=int, default=1,
                        help="engine workers per pooled session")
    parser.add_argument("--max-conflicts", type=int, default=20_000)
    parser.add_argument("--json-out", metavar="FILE", default=None,
                        help="write the measurements as JSON")
    parser.add_argument("--ladder", action="store_true",
                        help="run the concurrency ladder over all three "
                        "server configurations instead of the smoke bench")
    parser.add_argument("--clients", default="1,4,16,64",
                        help="ladder rungs: comma list of concurrent "
                        "client counts")
    parser.add_argument("--workers", type=int, default=2,
                        help="ladder: processes for the multi-process rung")
    parser.add_argument("--gate", choices=("hard", "warn", "off"),
                        default="warn",
                        help="ladder: how to treat the scale-out-beats-"
                        "threaded acceptance check")
    args = parser.parse_args(argv)

    if args.ladder:
        return run_ladder(args)

    names = [n.strip() for n in args.names.split(",") if n.strip()]
    if args.limit is not None:
        names = names[: args.limit]
    requests = _requests_for(names, args.max_conflicts)
    print(f"server bench: {len(requests)} instances "
          f"({', '.join(names)}), pool={args.pool}, jobs={args.jobs}")

    with make_server(port=0, pool=args.pool, jobs=args.jobs) as server:
        server.serve_background()
        host, port = server.address
        client = ServiceClient(host, port)

        floor_total, _ = _timed(client.health, 20)
        floor = floor_total / 20
        print(f"/healthz floor     : {floor * 1e3:8.2f} ms/req")

        cold_total, cold_laps = _timed(
            lambda it=iter(requests): client.synthesize(next(it)),
            len(requests),
        )
        print(f"cold synthesize    : {cold_total:8.3f} s total "
              f"({cold_total / len(requests) * 1e3:.2f} ms/req)")

        before = client.cache_stats()["engine"]
        warm_laps: list[float] = []
        for i in range(args.requests):
            request = requests[i % len(requests)]
            t0 = time.perf_counter()
            response = client.synthesize(request)
            warm_laps.append(time.perf_counter() - t0)
            assert response.name == request.name
        after = client.cache_stats()["engine"]

        warm_total = sum(warm_laps)
        rate = args.requests / warm_total if warm_total else float("inf")
        print(f"warm synthesize    : {warm_total:8.3f} s for "
              f"{args.requests} requests "
              f"({warm_total / args.requests * 1e3:.2f} ms/req, "
              f"{rate:.0f} req/s)")
        print(f"overhead multiple  : {warm_total / args.requests / floor:8.1f}"
              f"x the /healthz floor")

        # Scalar counters only: EngineStats also carries dict-valued
        # breakdowns (cores, preset_wins) that don't subtract.
        deltas = {
            k: after[k] - before.get(k, 0)
            for k in after
            if isinstance(after[k], int)
        }
        print(f"warm-phase deltas  : solver_calls={deltas['solver_calls']} "
              f"bound_calls={deltas['bound_calls']} "
              f"suite_hits={deltas['suite_hits']}")

        failures = []
        if deltas["solver_calls"] != 0:
            failures.append(
                f"warm phase ran {deltas['solver_calls']} SAT calls, want 0"
            )
        if deltas["bound_calls"] != 0:
            failures.append(
                f"warm phase recomputed {deltas['bound_calls']} bounds, want 0"
            )
        if deltas["suite_hits"] < args.requests:
            failures.append(
                f"only {deltas['suite_hits']} of {args.requests} warm "
                "requests hit the suite cache"
            )

        if args.json_out:
            with open(args.json_out, "w") as fh:
                json.dump(
                    {
                        "instances": list(names),
                        "pool": args.pool,
                        "jobs": args.jobs,
                        "healthz_floor_s": floor,
                        "cold_total_s": cold_total,
                        "cold_laps_s": cold_laps,
                        "warm_total_s": warm_total,
                        "warm_laps_s": warm_laps,
                        "warm_requests": args.requests,
                        "warm_req_per_s": rate,
                        "warm_engine_deltas": deltas,
                        "ok": not failures,
                    },
                    fh,
                    indent=2,
                )
            print(f"wrote {args.json_out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: warm requests served entirely from the suite cache "
          "(zero SAT calls, zero bound recomputations)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
