#!/usr/bin/env python
"""Warm-cache request throughput of the ``janus serve`` HTTP service.

Starts an in-process :class:`repro.server.SynthesisServer` (loopback,
ephemeral port), then measures three phases with
:class:`repro.client.ServiceClient`:

1. **overhead** — ``GET /healthz`` round-trips: the pure HTTP floor
   (connection setup, routing, JSON envelope) with no synthesis at all;
2. **cold** — one ``POST /v1/synthesize`` per distinct Table II target,
   populating the suite cache;
3. **warm** — ``--requests`` repeats of those same requests.  Every one
   must be answered from the suite cache: the script snapshots
   ``GET /v1/cache/stats`` around the phase and **asserts the
   solver_calls and bound_calls deltas are zero** — the served counters,
   not client-side guesswork — and that suite_hits grew by the request
   count.

The headline number is the warm phase: requests per second and the
mean round-trip, which should sit within a small multiple of the
/healthz floor (the response body is bigger) — i.e. warm synthesis is
HTTP-overhead-bound, not SAT-bound.

Usage::

    PYTHONPATH=src python benchmarks/bench_server.py
    PYTHONPATH=src python benchmarks/bench_server.py --limit 4 --requests 40
    PYTHONPATH=src python benchmarks/bench_server.py --pool 4 --json-out s.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from repro.api import RequestOptions, SynthesisRequest
from repro.bench.instances import build_instance
from repro.client import ServiceClient
from repro.server import make_server

# Small Table II instances that synthesize in well under a second each —
# the point here is HTTP/cache behavior, not SAT heroics (heavier
# workloads are bench_parallel.py / bench_incremental.py territory).
DEFAULT_NAMES = "b12_03,c17_01,dc1_00,clpl_00"


def _requests_for(names, max_conflicts: int) -> list[SynthesisRequest]:
    options = RequestOptions(max_conflicts=max_conflicts)
    out = []
    for name in names:
        spec = build_instance(name)
        out.append(SynthesisRequest.from_target(spec, options=options))
    return out


def _timed(fn, n: int) -> tuple[float, list[float]]:
    laps = []
    for _ in range(n):
        t0 = time.perf_counter()
        fn()
        laps.append(time.perf_counter() - t0)
    return sum(laps), laps


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--names", default=DEFAULT_NAMES,
                        help="comma list of Table II instances to request")
    parser.add_argument("--limit", type=int, default=None,
                        help="use only the first N of --names")
    parser.add_argument("--requests", type=int, default=30,
                        help="warm-phase request count (round-robin)")
    parser.add_argument("--pool", type=int, default=2,
                        help="server session-pool size")
    parser.add_argument("--jobs", type=int, default=1,
                        help="engine workers per pooled session")
    parser.add_argument("--max-conflicts", type=int, default=20_000)
    parser.add_argument("--json-out", metavar="FILE", default=None,
                        help="write the measurements as JSON")
    args = parser.parse_args(argv)

    names = [n.strip() for n in args.names.split(",") if n.strip()]
    if args.limit is not None:
        names = names[: args.limit]
    requests = _requests_for(names, args.max_conflicts)
    print(f"server bench: {len(requests)} instances "
          f"({', '.join(names)}), pool={args.pool}, jobs={args.jobs}")

    with make_server(port=0, pool=args.pool, jobs=args.jobs) as server:
        server.serve_background()
        host, port = server.address
        client = ServiceClient(host, port)

        floor_total, _ = _timed(client.health, 20)
        floor = floor_total / 20
        print(f"/healthz floor     : {floor * 1e3:8.2f} ms/req")

        cold_total, cold_laps = _timed(
            lambda it=iter(requests): client.synthesize(next(it)),
            len(requests),
        )
        print(f"cold synthesize    : {cold_total:8.3f} s total "
              f"({cold_total / len(requests) * 1e3:.2f} ms/req)")

        before = client.cache_stats()["engine"]
        warm_laps: list[float] = []
        for i in range(args.requests):
            request = requests[i % len(requests)]
            t0 = time.perf_counter()
            response = client.synthesize(request)
            warm_laps.append(time.perf_counter() - t0)
            assert response.name == request.name
        after = client.cache_stats()["engine"]

        warm_total = sum(warm_laps)
        rate = args.requests / warm_total if warm_total else float("inf")
        print(f"warm synthesize    : {warm_total:8.3f} s for "
              f"{args.requests} requests "
              f"({warm_total / args.requests * 1e3:.2f} ms/req, "
              f"{rate:.0f} req/s)")
        print(f"overhead multiple  : {warm_total / args.requests / floor:8.1f}"
              f"x the /healthz floor")

        deltas = {k: after[k] - before[k] for k in after}
        print(f"warm-phase deltas  : solver_calls={deltas['solver_calls']} "
              f"bound_calls={deltas['bound_calls']} "
              f"suite_hits={deltas['suite_hits']}")

        failures = []
        if deltas["solver_calls"] != 0:
            failures.append(
                f"warm phase ran {deltas['solver_calls']} SAT calls, want 0"
            )
        if deltas["bound_calls"] != 0:
            failures.append(
                f"warm phase recomputed {deltas['bound_calls']} bounds, want 0"
            )
        if deltas["suite_hits"] < args.requests:
            failures.append(
                f"only {deltas['suite_hits']} of {args.requests} warm "
                "requests hit the suite cache"
            )

        if args.json_out:
            with open(args.json_out, "w") as fh:
                json.dump(
                    {
                        "instances": list(names),
                        "pool": args.pool,
                        "jobs": args.jobs,
                        "healthz_floor_s": floor,
                        "cold_total_s": cold_total,
                        "cold_laps_s": cold_laps,
                        "warm_total_s": warm_total,
                        "warm_laps_s": warm_laps,
                        "warm_requests": args.requests,
                        "warm_req_per_s": rate,
                        "warm_engine_deltas": deltas,
                        "ok": not failures,
                    },
                    fh,
                    indent=2,
                )
            print(f"wrote {args.json_out}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("OK: warm requests served entirely from the suite cache "
          "(zero SAT calls, zero bound recomputations)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
