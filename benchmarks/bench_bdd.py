"""BDD substrate benchmarks: ISOP extraction and reordering.

Compares the two ISOP implementations (dense-table recursion vs BDD
recursion) on lattice functions — whose product counts Table I
tabulates — and measures what sifting buys on structured functions.
"""

from __future__ import annotations

import pytest

from repro.bdd import Bdd, bdd_isop, sift
from repro.boolf.isop import isop_interval
from repro.lattice import lattice_function

SHAPES = [(3, 3), (4, 3), (4, 4)]


@pytest.mark.parametrize("shape", SHAPES, ids=lambda s: f"{s[0]}x{s[1]}")
@pytest.mark.parametrize("engine", ["dense", "bdd"])
def bench_bdd_isop(benchmark, shape, engine):
    """ISOP of the lattice function via both engines."""
    rows, cols = shape
    sop = lattice_function(rows, cols)
    tt = sop.to_truthtable()

    if engine == "dense":
        def run():
            return len(isop_interval(tt, tt).cubes)
    else:
        def run():
            mgr = Bdd(rows * cols)
            node = mgr.from_sop(sop)
            _, cubes = bdd_isop(mgr, node, node)
            return len(cubes)

    cubes = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["cubes"] = cubes
    assert cubes == sop.num_products


@pytest.mark.parametrize("pairs", [4, 6])
def bench_bdd_sifting(benchmark, pairs):
    """Sifting the interleaved-AND function: exponential -> linear."""

    def run():
        mgr = Bdd(2 * pairs)
        f = mgr.disjoin(
            mgr.and_(mgr.var(i), mgr.var(i + pairs)) for i in range(pairs)
        )
        before = mgr.dag_size(f)
        new_mgr, (g,) = sift(mgr, [f], max_rounds=1)
        after = new_mgr.dag_size(g)
        assert after < before
        return before, after

    before, after = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["nodes_before"] = before
    benchmark.extra_info["nodes_after"] = after
