"""SAT substrate ablations: preprocessing and proof-logging overhead.

Three questions the DESIGN notes ask of the solver stack:

* does SatELite-style preprocessing pay for itself on LM encodings?
* what does DRUP proof logging cost on an UNSAT probe?
* how does the solver scale on the classic pigeonhole family?
"""

from __future__ import annotations

import pytest

from repro.core import EncodeOptions, best_encoding, make_spec
from repro.sat import CdclSolver, check_refutation, preprocess


def lm_cnf(rows: int, cols: int):
    spec = make_spec("cd + c'd' + abe + a'b'e'", name="fig4")
    encoding, _ = best_encoding(spec, rows, cols, EncodeOptions())
    assert encoding is not None
    return encoding.cnf


def solve_clauses(clauses, max_conflicts=300_000):
    solver = CdclSolver(max_conflicts=max_conflicts)
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    if not ok:
        from repro.sat.solver import SolveResult

        return SolveResult("unsat", stats=solver.stats)
    return solver.solve()


@pytest.mark.parametrize("use_preprocess", [False, True], ids=["raw", "preprocessed"])
def bench_sat_preprocess_lm(benchmark, use_preprocess):
    """Fig. 4 LM encoding (3x4, SAT) with and without preprocessing."""
    cnf = lm_cnf(3, 4)

    def run():
        if use_preprocess:
            pre = preprocess(cnf)
            assert not pre.is_unsat
            result = solve_clauses(pre.cnf)
            assert result.is_sat
            return pre.cnf.num_clauses
        result = solve_clauses(cnf)
        assert result.is_sat
        return cnf.num_clauses

    clauses = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["clauses_solved"] = clauses


@pytest.mark.parametrize("log_proof", [False, True], ids=["plain", "drup"])
def bench_sat_proof_overhead(benchmark, log_proof):
    """UNSAT LM probe (Fig. 4 on an infeasible 3x3) +/- proof logging."""
    cnf = lm_cnf(3, 3)

    def run():
        solver = CdclSolver(max_conflicts=500_000, proof=log_proof)
        ok = True
        for clause in cnf:
            ok = solver.add_clause(clause) and ok
        if ok:
            result = solver.solve()
            assert result.is_unsat
        if log_proof:
            assert check_refutation(cnf, solver.proof).valid
            return len(solver.proof)
        return 0

    steps = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["proof_steps"] = steps


@pytest.mark.parametrize("holes", [4, 5, 6])
def bench_sat_pigeonhole(benchmark, holes):
    """PHP(n+1, n): canonical exponential family for resolution."""

    def run():
        pigeons = holes + 1
        solver = CdclSolver()

        def var(p, h):
            return p * holes + h + 1

        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        result = solver.solve()
        assert result.is_unsat
        return result.stats.conflicts

    conflicts = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["conflicts"] = conflicts
