"""SAT substrate ablations: preprocessing, proofs, and preset sweeps.

Three questions the DESIGN notes ask of the solver stack (the
pytest-benchmark ``bench_*`` functions):

* does SatELite-style preprocessing pay for itself on LM encodings?
* what does DRUP proof logging cost on an UNSAT probe?
* how does the solver scale on the classic pigeonhole family?

Plus two standalone CLI modes:

``--sweep``
    Run every named :class:`~repro.sat.solver.SolverConfig` preset over
    the realizability frontier workload (binary-searched minimal width
    per row count, the bulk-probing pattern the engine leans on) and
    report per-preset propagations / conflicts / wall clock.  This is
    the measured basis for the shipped default preset; results go to
    ``BENCH_pr7.json`` (``--json-out``) for the CI perf-smoke artifact.

``--throughput``
    Propagations-per-second microbench of the solver cores on a fixed
    seeded ``repro.gen`` workload: the vendored pre-PR solver
    (``benchmarks/_legacy_sat.py``, the machine-relative baseline), the
    rewritten ``pure`` core, and the compiled ``native`` core when the
    extension is built.  Engines are interleaved across ``--reps``
    rounds (best-of to shed scheduler noise) and compared as *ratios*,
    never absolute numbers.  Results go to ``BENCH_pr9.json``; by
    default the run fails (exit 1) if the native core is detected but
    below 5x the pure core, or if the pure rewrite regresses below the
    legacy baseline.  ``--ratio-gates warn`` downgrades a miss to a
    loud warning (still recorded in the JSON) for noisy shared CI
    runners where wall-clock ratios are not trustworthy.

Usage::

    PYTHONPATH=src python benchmarks/bench_sat.py --sweep --limit 4
    PYTHONPATH=src python benchmarks/bench_sat.py \
        --sweep --limit 2 --max-conflicts 8000 --json-out BENCH_pr7.json
    PYTHONPATH=src python benchmarks/bench_sat.py \
        --throughput --reps 3 --json-out BENCH_pr9.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

import pytest

from repro.core import EncodeOptions, best_encoding, make_spec
from repro.sat import CdclSolver, check_refutation, preprocess


def lm_cnf(rows: int, cols: int):
    spec = make_spec("cd + c'd' + abe + a'b'e'", name="fig4")
    encoding, _ = best_encoding(spec, rows, cols, EncodeOptions())
    assert encoding is not None
    return encoding.cnf


def solve_clauses(clauses, max_conflicts=300_000):
    solver = CdclSolver(max_conflicts=max_conflicts)
    ok = True
    for clause in clauses:
        ok = solver.add_clause(clause) and ok
    if not ok:
        from repro.sat.solver import SolveResult

        return SolveResult("unsat", stats=solver.stats)
    return solver.solve()


@pytest.mark.parametrize("use_preprocess", [False, True], ids=["raw", "preprocessed"])
def bench_sat_preprocess_lm(benchmark, use_preprocess):
    """Fig. 4 LM encoding (3x4, SAT) with and without preprocessing."""
    cnf = lm_cnf(3, 4)

    def run():
        if use_preprocess:
            pre = preprocess(cnf)
            assert not pre.is_unsat
            result = solve_clauses(pre.cnf)
            assert result.is_sat
            return pre.cnf.num_clauses
        result = solve_clauses(cnf)
        assert result.is_sat
        return cnf.num_clauses

    clauses = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["clauses_solved"] = clauses


@pytest.mark.parametrize("log_proof", [False, True], ids=["plain", "drup"])
def bench_sat_proof_overhead(benchmark, log_proof):
    """UNSAT LM probe (Fig. 4 on an infeasible 3x3) +/- proof logging."""
    cnf = lm_cnf(3, 3)

    def run():
        solver = CdclSolver(max_conflicts=500_000, proof=log_proof)
        ok = True
        for clause in cnf:
            ok = solver.add_clause(clause) and ok
        if ok:
            result = solver.solve()
            assert result.is_unsat
        if log_proof:
            assert check_refutation(cnf, solver.proof).valid
            return len(solver.proof)
        return 0

    steps = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["proof_steps"] = steps


@pytest.mark.parametrize("holes", [4, 5, 6])
def bench_sat_pigeonhole(benchmark, holes):
    """PHP(n+1, n): canonical exponential family for resolution."""

    def run():
        pigeons = holes + 1
        solver = CdclSolver()

        def var(p, h):
            return p * holes + h + 1

        for p in range(pigeons):
            solver.add_clause([var(p, h) for h in range(holes)])
        for h in range(holes):
            for p1 in range(pigeons):
                for p2 in range(p1 + 1, pigeons):
                    solver.add_clause([-var(p1, h), -var(p2, h)])
        result = solver.solve()
        assert result.is_unsat
        return result.stats.conflicts

    conflicts = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["conflicts"] = conflicts


# --------------------------------------------------------- preset sweep CLI
class _SolverMeter:
    """Process-wide solver-work counter: sums the stats of every solver
    constructed while the meter is active (subcalls included, which
    per-result attempt lists miss)."""

    def __init__(self) -> None:
        self._stats: list = []
        self._orig_init = None

    def __enter__(self) -> "_SolverMeter":
        from repro.sat import solver as sat_solver

        self._orig_init = sat_solver.CdclSolver.__init__
        stats_list = self._stats
        orig = self._orig_init

        def counting_init(solver, *args, **kwargs):
            orig(solver, *args, **kwargs)
            stats_list.append(solver.stats)

        sat_solver.CdclSolver.__init__ = counting_init
        return self

    def __exit__(self, *exc) -> None:
        from repro.sat import solver as sat_solver

        sat_solver.CdclSolver.__init__ = self._orig_init

    @property
    def propagations(self) -> int:
        return sum(s.propagations for s in self._stats)

    @property
    def conflicts(self) -> int:
        return sum(s.conflicts for s in self._stats)


def _decide(spec, rows, cols, options) -> str:
    """Stateless realizability query under the options' solver config."""
    from repro.core.janus import solve_lm
    from repro.core.structural import structural_check
    from repro.lattice.paths import left_right_paths8, top_bottom_paths

    if not structural_check(spec, rows, cols):
        return "unsat"
    if (
        len(top_bottom_paths(rows, cols)) > options.max_lattice_products
        and len(left_right_paths8(rows, cols)) > options.max_lattice_products
    ):
        return "unknown"
    return solve_lm(spec, rows, cols, options).status


def _frontier(spec, options, rmax: int, cmax: int) -> dict:
    """Minimal realizable width per row count via binary search."""
    out = {}
    for rows in range(1, rmax + 1):
        if _decide(spec, rows, cmax, options) != "sat":
            out[rows] = None
            continue
        lo, hi, best = 1, cmax - 1, cmax
        while lo <= hi:
            mid = (lo + hi) // 2
            if _decide(spec, rows, mid, options) == "sat":
                best, hi = mid, mid - 1
            else:
                lo = mid + 1
        out[rows] = best
    return out


def _run_sweep(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.bench.instances import PAPER_TABLE2, build_instance
    from repro.bench.runner import profile_names
    from repro.core.janus import JanusOptions, synthesize
    from repro.sat.solver import SOLVER_PRESETS

    presets = (
        [p.strip() for p in args.presets.split(",") if p.strip()]
        if args.presets
        else sorted(SOLVER_PRESETS)
    )
    unknown = [p for p in presets if p not in SOLVER_PRESETS]
    if unknown:
        print(f"error: unknown preset(s) {unknown}; "
              f"known: {sorted(SOLVER_PRESETS)}", file=sys.stderr)
        return 2

    if args.generated:
        # Seeded generator workload instead of the paper's named
        # benchmarks: same sweep, reproducible instances (see
        # docs/workloads.md).
        from repro.gen import generated_specs

        specs = generated_specs(
            args.generated, level=args.gen_level,
            base_seed=args.gen_seed, count=args.gen_count,
        )
        if args.limit:
            specs = specs[: args.limit]
        by_spec = {spec.name: spec for spec in specs}
        names = [spec.name for spec in specs]
    else:
        by_name = {r.name: r for r in PAPER_TABLE2}
        names = sorted(
            profile_names(args.profile),
            key=lambda n: (by_name[n].cpu_janus, by_name[n].num_inputs, n),
        )
        if args.limit:
            names = names[: args.limit]
        by_spec = None
    base_options = JanusOptions(max_conflicts=args.max_conflicts)

    # One baseline synthesis per instance bounds the frontier grid (and
    # is shared by every preset, so the matrix compares like with like).
    grids = {}
    for name in names:
        spec = by_spec[name] if by_spec is not None else build_instance(name)
        base = synthesize(spec, name=name, options=base_options)
        grids[name] = (
            spec,
            min(base.rows + 2, 6),
            min(max(base.cols + 2, 4), 8),
        )

    print(f"== preset sweep: {len(presets)} presets x {len(names)} "
          f"instances (realizability frontier, "
          f"max_conflicts={args.max_conflicts})")
    rows_out = {}
    frontiers = {}
    for preset in presets:
        options = replace(base_options, solver=SOLVER_PRESETS[preset])
        tot_p = tot_c = 0
        tot_t = 0.0
        frontiers[preset] = {}
        for name in names:
            spec, rmax, cmax = grids[name]
            with _SolverMeter() as meter:
                t0 = time.monotonic()
                frontiers[preset][name] = _frontier(spec, options, rmax, cmax)
                tot_t += time.monotonic() - t0
            tot_p += meter.propagations
            tot_c += meter.conflicts
        rows_out[preset] = {
            "propagations": tot_p,
            "conflicts": tot_c,
            "wall": tot_t,
        }

    # Frontiers are semantic (budget-independent at these sizes) — any
    # disagreement means a preset hit its budget, worth surfacing.
    reference = frontiers[presets[0]]
    print(f"{'preset':>10}  {'propagations':>13}  {'conflicts':>10}  "
          f"{'wall':>7}  frontier")
    for preset in presets:
        row = rows_out[preset]
        agrees = frontiers[preset] == reference
        row["frontier_agrees"] = agrees
        print(f"{preset:>10}  {row['propagations']:>13}  "
              f"{row['conflicts']:>10}  {row['wall']:>6.1f}s  "
              f"{'agrees' if agrees else 'DISAGREES'}")

    winner = min(presets, key=lambda p: rows_out[p]["propagations"])
    default_row = rows_out.get("default")
    print(f"\nmeasured winner by propagations: {winner}")
    if default_row is not None and winner != "default":
        ratio = default_row["propagations"] / max(
            1, rows_out[winner]["propagations"]
        )
        print(f"default is {ratio:.2f}x the winner's propagations on this "
              "workload (the shipped default keeps byte-identity with the "
              "historical solver; re-pick only on a decisive margin)")

    report = {
        "options": {
            "profile": args.profile,
            "limit": args.limit,
            "max_conflicts": args.max_conflicts,
            "generated": args.generated,
            "gen_level": args.gen_level,
            "gen_seed": args.gen_seed,
        },
        "instances": names,
        "presets": rows_out,
        "winner": winner,
    }
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}")
    return 0


# ------------------------------------------------------ throughput CLI
def _throughput_workload(args: argparse.Namespace) -> list:
    """A fixed, seeded clause-list workload for the core microbench.

    LM encodings of generated specs over a small grid ladder plus the
    Fig. 4 SAT/UNSAT pair — deterministic given the generator knobs, so
    every engine solves the exact same CNFs and a run is comparable
    with itself across engines (never across machines; see the ratios).
    """
    from repro.gen import generated_specs

    workload = [lm_cnf(3, 4), lm_cnf(3, 3)]
    specs = generated_specs(
        args.gen_kinds, level=args.gen_level,
        base_seed=args.gen_seed, count=args.gen_count,
    )
    options = EncodeOptions()
    for spec in specs:
        for rows, cols in ((3, 4), (4, 5)):
            encoding, _ = best_encoding(spec, rows, cols, options)
            if encoding is not None:
                workload.append(encoding.cnf)
    return [list(cnf) for cnf in workload]


def _time_engine(make_solver, workload, max_conflicts: int):
    """Solve the whole workload once; return (wall_seconds, props)."""
    t0 = time.perf_counter()
    props = 0
    for clauses in workload:
        solver = make_solver(max_conflicts)
        ok = True
        for clause in clauses:
            ok = solver.add_clause(clause) and ok
        if ok:
            solver.solve()
        props += solver.stats.propagations
    return time.perf_counter() - t0, props


def _run_throughput(args: argparse.Namespace) -> int:
    from benchmarks._legacy_sat import LegacyCdclSolver
    from repro.sat import _native
    from repro.sat.solver import CdclSolver

    workload = _throughput_workload(args)
    n_clauses = sum(len(w) for w in workload)
    print(f"== core throughput: {len(workload)} CNFs, {n_clauses} clauses, "
          f"reps={args.reps}, max_conflicts={args.max_conflicts}")

    engines = {
        "legacy": lambda mc: LegacyCdclSolver(max_conflicts=mc),
        "pure": lambda mc: CdclSolver(max_conflicts=mc, core="pure"),
    }
    native_detected = _native.native_available()
    if native_detected:
        engines["native"] = lambda mc: CdclSolver(
            max_conflicts=mc, core="native"
        )
    else:
        print("native core not built (pure-only run); "
              f"import error: {_native.native_import_error()}")

    # Interleave engines within each rep so drift (thermal, scheduler)
    # hits all of them alike; keep the best rep per engine.
    results = {name: {"wall": float("inf"), "props": 0} for name in engines}
    for rep in range(args.reps):
        for name, make_solver in engines.items():
            wall, props = _time_engine(make_solver, workload,
                                       args.max_conflicts)
            row = results[name]
            if wall < row["wall"]:
                row["wall"] = wall
            row["props"] = props  # deterministic per engine, rep-invariant

    print(f"{'engine':>8}  {'props':>12}  {'wall':>8}  {'props/s':>12}")
    for name, row in results.items():
        row["props_per_sec"] = row["props"] / row["wall"]
        print(f"{name:>8}  {row['props']:>12}  {row['wall']:>7.2f}s  "
              f"{row['props_per_sec']:>12.0f}")

    pure_pps = results["pure"]["props_per_sec"]
    legacy_pps = results["legacy"]["props_per_sec"]
    ratios = {"pure_vs_legacy": pure_pps / legacy_pps}
    if native_detected:
        ratios["native_vs_pure"] = (
            results["native"]["props_per_sec"] / pure_pps
        )
    print("\nratios (this machine, this run):")
    for key, value in ratios.items():
        print(f"  {key}: {value:.2f}x")

    # Ratio gates (hard by default, --ratio-gates warn to downgrade).
    # The 0.95 floor on pure-vs-legacy absorbs run-to-run scheduler
    # noise; a genuine regression of the rewrite shows up far below it
    # (the rewrite measures >=1.2x on this workload).
    failures = []
    if ratios["pure_vs_legacy"] < 0.95:
        failures.append(
            f"pure core regressed below the pre-rewrite baseline: "
            f"{ratios['pure_vs_legacy']:.2f}x < 0.95x"
        )
    if native_detected and ratios["native_vs_pure"] < 5.0:
        failures.append(
            f"native core below the 5x gate: "
            f"{ratios['native_vs_pure']:.2f}x < 5.0x"
        )

    report = {
        "options": {
            "reps": args.reps,
            "max_conflicts": args.max_conflicts,
            "gen_kinds": args.gen_kinds,
            "gen_level": args.gen_level,
            "gen_seed": args.gen_seed,
            "gen_count": args.gen_count,
        },
        "workload": {"cnfs": len(workload), "clauses": n_clauses},
        "native_detected": native_detected,
        "engines": results,
        "ratios": ratios,
        "gate_mode": args.ratio_gates,
        "failures": failures,
    }
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
        print(f"wrote {args.json_out}")

    if args.ratio_gates == "warn":
        # Shared CI runners are too noisy for a hard wall-clock gate;
        # surface misses loudly (and in the JSON artifact) without
        # failing the job.  Dedicated benchmark machines run the
        # default hard mode.
        for failure in failures:
            print(f"GATE WARNING (--ratio-gates=warn): {failure}",
                  file=sys.stderr)
        return 0
    for failure in failures:
        print(f"GATE FAILED: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="SolverConfig preset sweep (the bench_* functions in "
        "this file run under pytest-benchmark, not this CLI)"
    )
    parser.add_argument("--sweep", action="store_true",
                        help="run the preset matrix over the realizability "
                        "frontier workload")
    parser.add_argument("--throughput", action="store_true",
                        help="props/sec microbench of the solver cores "
                        "(legacy baseline vs pure vs native)")
    parser.add_argument("--ratio-gates", choices=("hard", "warn"),
                        default="hard",
                        help="throughput ratio gates: 'hard' exits "
                        "non-zero on a miss (dedicated machines), "
                        "'warn' only reports it (noisy shared CI "
                        "runners)")
    parser.add_argument("--reps", type=int, default=3,
                        help="interleaved repetitions per engine "
                        "(--throughput; best rep wins)")
    parser.add_argument("--gen-kinds", default="mixed",
                        help="generator family selector for the "
                        "--throughput workload")
    parser.add_argument("--profile", default="fast",
                        choices=("fast", "medium", "full"))
    parser.add_argument("--limit", type=int, default=4,
                        help="use only the first N instances (0 = all)")
    parser.add_argument("--max-conflicts", type=int, default=30_000,
                        help="per-probe conflict budget (deterministic)")
    parser.add_argument("--presets", default=None,
                        help="comma list of presets (default: all named)")
    parser.add_argument("--generated", default=None, metavar="KINDS",
                        help="use the seeded generator workload instead of "
                        "the paper instances: a family kind, comma list, "
                        "or 'mixed' (see janus gen)")
    parser.add_argument("--gen-level", type=int, default=1,
                        help="generator difficulty-ladder level (0..4)")
    parser.add_argument("--gen-seed", type=int, default=0,
                        help="generator base seed")
    parser.add_argument("--gen-count", type=int, default=2,
                        help="generated instances per family kind")
    parser.add_argument("--json-out", default=None,
                        help="write machine-readable results "
                        "(BENCH_pr7.json)")
    args = parser.parse_args(argv)
    if args.sweep and args.throughput:
        parser.error("--sweep and --throughput are mutually exclusive")
    if args.throughput:
        return _run_throughput(args)
    if not args.sweep:
        parser.error("pass --sweep or --throughput")
    return _run_sweep(args)


if __name__ == "__main__":
    sys.exit(main())
