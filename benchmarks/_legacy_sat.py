"""The pre-PR-9 pure-Python CdclSolver, vendored verbatim as a benchmark
baseline.

``bench_sat.py --throughput`` compares the rewritten int-packed pure core
and the native kernel against *this* implementation -- the exact solver
the repo shipped before the compiled-hot-path PR -- so the reported
speedups are measured against the real historical code on the same
machine, not against a recorded number from different hardware.

Not product code: nothing under ``src/`` imports this module, and the
class is only ever constructed by the benchmark harness.  Behavioural
fixes do not need to be backported here; the file is a frozen snapshot
(renamed ``LegacyCdclSolver``) of ``src/repro/sat/solver.py`` at commit
c18eb36.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import replace
from typing import Iterable, Optional, Sequence

from repro.errors import SolverError
from repro.sat.solver import (
    _KEEP,
    _UNASSIGNED,
    SolveResult,
    SolverConfig,
    SolverStats,
)

__all__ = ["LegacyCdclSolver"]


class LegacyCdclSolver:
    """Conflict-driven clause-learning solver over DIMACS-style literals."""

    def __init__(
        self,
        num_vars: int = 0,
        max_conflicts=_KEEP,
        max_time=_KEEP,
        restart_base=_KEEP,
        var_decay=_KEEP,
        clause_decay=_KEEP,
        proof: bool = False,
        config: Optional[SolverConfig] = None,
    ) -> None:
        # ``config`` is the one true tuning surface; the loose kwargs are
        # a deprecation shim for pre-SolverConfig call sites.  Explicitly
        # passed kwargs override the matching config field, so legacy
        # callers keep their exact behaviour.
        cfg = config if config is not None else SolverConfig()
        overrides = {
            name: value
            for name, value in (
                ("max_conflicts", max_conflicts),
                ("max_time", max_time),
                ("restart_base", restart_base),
                ("var_decay", var_decay),
                ("clause_decay", clause_decay),
            )
            if value is not _KEEP
        }
        if overrides:
            cfg = replace(cfg, **overrides)
        self.config = cfg
        self.ok = True
        self.stats = SolverStats()
        self.max_conflicts = cfg.max_conflicts
        self.max_time = cfg.max_time
        self.restart_base = cfg.restart_base
        self._save_phase = cfg.phase_saving == "save"
        # DRUP proof log: ("a"|"d", external-literal tuple) per event.  Only
        # *derived* clauses are logged (learnt clauses, level-0 strengthened
        # inputs, the final empty clause) plus learnt-clause deletions; this
        # is exactly the fragment :mod:`repro.sat.drat` checks.
        self.proof: Optional[list[tuple[str, tuple[int, ...]]]] = (
            [] if proof else None
        )

        # internal literal encoding: var v in [0,n); lit = v*2 (true) or
        # v*2+1 (false).  External var ids are v+1.
        self._nvars = 0
        self._clauses: list[list[int]] = []  # problem clauses
        self._learnts: list[list[int]] = []
        self._clause_act: dict[int, float] = {}  # id(clause) -> activity
        self._clause_lbd: dict[int, int] = {}
        self._watches: list[list[list[int]]] = []  # per internal lit
        self._bins: list[list[list[int]]] = []  # binary clauses per lit
        self._assign: list[int] = []  # per var: _UNASSIGNED/0/1
        self._level: list[int] = []
        self._reason: list[Optional[list[int]]] = []
        self._trail: list[int] = []  # internal lits
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._activity: list[float] = []
        self._var_inc = 1.0
        self._var_decay = cfg.var_decay
        self._cla_inc = 1.0
        self._cla_decay = cfg.clause_decay
        self._phase: list[int] = []  # saved phase per var (0/1)
        self._heap: list[tuple[float, int]] = []  # lazy (-activity, var)
        self._seen: list[int] = []
        while self._nvars < num_vars:
            self._new_var_internal()

    # ----------------------------------------------------------- interface
    def new_var(self) -> int:
        """Allocate a variable; returns its external (1-based) id."""
        self._new_var_internal()
        return self._nvars

    def _new_var_internal(self) -> None:
        self._nvars += 1
        self._watches.append([])
        self._watches.append([])
        self._bins.append([])
        self._bins.append([])
        self._assign.append(_UNASSIGNED)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(0)
        self._seen.append(0)
        heapq.heappush(self._heap, (0.0, self._nvars - 1))

    def _ensure_vars(self, ext_lits: Iterable[int]) -> None:
        top = 0
        for lit in ext_lits:
            top = max(top, abs(lit))
        while self._nvars < top:
            self._new_var_internal()

    @staticmethod
    def _to_internal(ext: int) -> int:
        var = abs(ext) - 1
        return var * 2 + (1 if ext < 0 else 0)

    @staticmethod
    def _to_external(internal: int) -> int:
        var = (internal >> 1) + 1
        return -var if internal & 1 else var

    def _log_proof(self, kind: str, internal_lits: Sequence[int]) -> None:
        if self.proof is not None:
            self.proof.append(
                (kind, tuple(self._to_external(l) for l in internal_lits))
            )

    def add_clause(self, ext_lits: Sequence[int]) -> bool:
        """Add a clause; returns False if the formula became trivially UNSAT."""
        if not self.ok:
            return False
        if self._trail_lim:
            raise SolverError("clauses must be added at decision level 0")
        for lit in ext_lits:
            if lit == 0:
                raise SolverError("literal 0 is not allowed")
        self._ensure_vars(ext_lits)
        lits = sorted({self._to_internal(l) for l in ext_lits})
        # Tautology / duplicate / falsified-literal simplification at level 0.
        out: list[int] = []
        for lit in lits:
            if lit ^ 1 in out:
                return True  # tautology: x or ~x
            val = self._lit_value(lit)
            if val == 1:
                return True  # already satisfied at level 0
            if val == 0:
                continue  # falsified at level 0: drop the literal
            out.append(lit)
        if len(out) < len(lits):
            # The stored clause was strengthened by level-0 facts; it is a
            # derived (RUP) clause, so a proof must introduce it.
            self._log_proof("a", out)
        if not out:
            self.ok = False
            return False
        if len(out) == 1:
            if not self._enqueue(out[0], None):
                self._log_proof("a", [])
                self.ok = False
                return False
            conflict = self._propagate()
            if conflict is not None:
                self._log_proof("a", [])
                self.ok = False
                return False
            return True
        self._attach(out, learnt=False)
        return True

    def solve(
        self,
        assumptions: Sequence[int] = (),
        max_conflicts=_KEEP,
        max_time=_KEEP,
    ) -> SolveResult:
        """Search for a model; honour conflict/time budgets.

        ``max_conflicts`` / ``max_time`` override the constructor budgets
        for this call only (pass ``None`` to lift a budget).  Budgets are
        per call: a reused solver gets a fresh conflict allowance on
        every ``solve``, which is what lets the incremental prober give
        each probe the same deterministic budget the one-shot path has.
        """
        start = time.monotonic()
        limit_conflicts = (
            self.max_conflicts if max_conflicts is _KEEP else max_conflicts
        )
        limit_time = self.max_time if max_time is _KEEP else max_time
        result = self._solve(assumptions, start, limit_conflicts, limit_time)
        result.wall_time = time.monotonic() - start
        return result

    # ------------------------------------------------------------ internals
    def _lit_value(self, lit: int) -> int:
        """1 true, 0 false, _UNASSIGNED unknown."""
        val = self._assign[lit >> 1]
        if val == _UNASSIGNED:
            return _UNASSIGNED
        return val ^ (lit & 1)

    def _enqueue(self, lit: int, reason: Optional[list[int]]) -> bool:
        val = self._lit_value(lit)
        if val == 0:
            return False
        if val == 1:
            return True
        var = lit >> 1
        self._assign[var] = 1 ^ (lit & 1)
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)
        return True

    def _attach(self, lits: list[int], learnt: bool) -> list[int]:
        if learnt:
            self._learnts.append(lits)
            self._clause_act[id(lits)] = self._cla_inc
            self.stats.learned += 1
        else:
            self._clauses.append(lits)
        if len(lits) == 2:
            # Binary clauses live in dedicated implication lists: when one
            # literal becomes false the other is immediately forced.
            self._bins[lits[0]].append(lits)
            self._bins[lits[1]].append(lits)
            return lits
        # watches[w] holds the clauses currently watching literal w; they
        # are examined when w becomes false.
        self._watches[lits[0]].append(lits)
        self._watches[lits[1]].append(lits)
        return lits

    def _propagate(self) -> Optional[list[int]]:
        """Two-watched-literal BCP; returns a conflicting clause or None.

        This loop dominates every probe, so everything loop-invariant is
        hoisted into locals: the watch/implication tables, the assignment
        arrays (flat int lists — faster to index in CPython than
        ``array`` objects), the decision level (constant for the whole
        call: propagation never opens a level), the queue head and the
        propagation counter (folded back into ``stats`` on exit).
        """
        watches = self._watches
        bins = self._bins
        assign = self._assign
        level = self._level
        reason = self._reason
        trail = self._trail
        unassigned = _UNASSIGNED
        cur_level = len(self._trail_lim)
        qhead = self._qhead
        propagated = 0
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            propagated += 1
            falsified = lit ^ 1
            # Binary implications first: falsified forces the other literal.
            for clause in bins[falsified]:
                other = clause[0]
                if other == falsified:
                    other = clause[1]
                    clause[0], clause[1] = other, falsified
                var = other >> 1
                v = assign[var]
                if v == unassigned:
                    assign[var] = 1 ^ (other & 1)
                    level[var] = cur_level
                    reason[var] = clause
                    trail.append(other)
                elif (v ^ (other & 1)) == 0:
                    self._qhead = len(trail)
                    self.stats.propagations += propagated
                    return clause
            watch_list = watches[falsified]
            i = 0
            j = 0
            n = len(watch_list)
            while i < n:
                clause = watch_list[i]
                i += 1
                # Ensure the falsified literal sits at position 1.
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                v0 = assign[first >> 1]
                if v0 != unassigned and (v0 ^ (first & 1)) == 1:
                    watch_list[j] = clause
                    j += 1
                    continue
                # Look for a replacement watch.  A replacement is any
                # non-false literal; it can never equal ``falsified``, so
                # the append below never touches the list being compacted.
                moved = False
                for k in range(2, len(clause)):
                    other = clause[k]
                    vo = assign[other >> 1]
                    if vo == unassigned or (vo ^ (other & 1)) == 1:
                        clause[1], clause[k] = clause[k], clause[1]
                        watches[other].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                # Clause is unit or conflicting.
                watch_list[j] = clause
                j += 1
                if v0 != unassigned:  # first is false: conflict
                    # Keep remaining watches in place.
                    while i < n:
                        watch_list[j] = watch_list[i]
                        j += 1
                        i += 1
                    del watch_list[j:]
                    self._qhead = len(trail)
                    self.stats.propagations += propagated
                    return clause
                var = first >> 1
                assign[var] = 1 ^ (first & 1)
                level[var] = cur_level
                reason[var] = clause
                trail.append(first)
            del watch_list[j:]
        self._qhead = qhead
        self.stats.propagations += propagated
        return None

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _decide(self, lit: int) -> None:
        self._trail_lim.append(len(self._trail))
        self.stats.decisions += 1
        self.stats.max_decision_level = max(
            self.stats.max_decision_level, self._decision_level()
        )
        assert self._enqueue(lit, None)

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        bound = self._trail_lim[level]
        heap = self._heap
        save_phase = self._save_phase
        for lit in reversed(self._trail[bound:]):
            var = lit >> 1
            if save_phase:
                self._phase[var] = self._assign[var]
            self._assign[var] = _UNASSIGNED
            self._reason[var] = None
            heapq.heappush(heap, (-self._activity[var], var))
        del self._trail[bound:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            scale = 1e-100
            for v in range(self._nvars):
                self._activity[v] *= scale
            self._var_inc *= scale
            self._heap = [(-self._activity[v], v) for v in range(self._nvars)]
            heapq.heapify(self._heap)
        elif self._assign[var] == _UNASSIGNED:
            heapq.heappush(self._heap, (-self._activity[var], var))

    def _bump_clause(self, clause: list[int]) -> None:
        key = id(clause)
        if key in self._clause_act:
            self._clause_act[key] += self._cla_inc
            if self._clause_act[key] > 1e100:
                for k in self._clause_act:
                    self._clause_act[k] *= 1e-100
                self._cla_inc *= 1e-100

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int, int]:
        """First-UIP learning; returns (learnt, backjump_level, lbd)."""
        seen = self._seen
        level = self._level
        reason = self._reason
        learnt: list[int] = [0]  # placeholder for the asserting literal
        counter = 0
        lit = -1
        clause: Optional[list[int]] = conflict
        index = len(self._trail) - 1
        cur_level = self._decision_level()

        while True:
            assert clause is not None
            self._bump_clause(clause)
            # For reason clauses (every iteration after the first) position 0
            # holds the implied literal itself and is skipped.
            for q in (clause if lit == -1 else clause[1:]):
                var = q >> 1
                if not seen[var] and level[var] > 0:
                    seen[var] = 1
                    self._bump_var(var)
                    if level[var] == cur_level:
                        counter += 1
                    else:
                        learnt.append(q)
            # pick next literal from trail at current level
            while not seen[self._trail[index] >> 1]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = lit >> 1
            seen[var] = 0
            counter -= 1
            clause = reason[var]
            if counter == 0:
                break
        learnt[0] = lit ^ 1

        # Recursive (MiniSat ccmin=deep) minimization: a literal is dropped
        # when it is implied by the remaining clause literals through the
        # implication graph.  ``seen`` marks are shared across the clause's
        # literals so the walk is amortized; ``abstract_levels`` prunes
        # chains that touch decision levels absent from the clause.
        for q in learnt[1:]:
            seen[q >> 1] = 1
        abstract_levels = 0
        for q in learnt[1:]:
            abstract_levels |= 1 << (level[q >> 1] & 31)
        to_clear = list(learnt[1:])
        keep = [learnt[0]]
        for q in learnt[1:]:
            if reason[q >> 1] is None or not self._lit_redundant(
                q, abstract_levels, to_clear
            ):
                keep.append(q)
        for q in to_clear:
            seen[q >> 1] = 0
        seen[learnt[0] >> 1] = 0
        learnt = keep

        if len(learnt) == 1:
            bt_level = 0
        else:
            # Find the second-highest level and move its literal to slot 1.
            max_i = 1
            for i in range(2, len(learnt)):
                if level[learnt[i] >> 1] > level[learnt[max_i] >> 1]:
                    max_i = i
            learnt[1], learnt[max_i] = learnt[max_i], learnt[1]
            bt_level = level[learnt[1] >> 1]

        lbd = len({level[q >> 1] for q in learnt})
        return learnt, bt_level, lbd

    def _lit_redundant(
        self, lit: int, abstract_levels: int, to_clear: list[int]
    ) -> bool:
        """MiniSat's litRedundant: walk ``lit``'s implication ancestry; the
        literal is redundant iff the walk only ever meets seen (in-clause)
        variables, level-0 facts, or further implied variables at clause
        decision levels.  Newly visited variables are marked seen and
        queued in ``to_clear`` so later walks reuse the work."""
        seen = self._seen
        level = self._level
        reason = self._reason
        stack = [lit]
        top = len(to_clear)
        while stack:
            p = stack.pop()
            clause = reason[p >> 1]
            assert clause is not None
            for q in clause[1:]:
                var = q >> 1
                if seen[var] or level[var] == 0:
                    continue
                if reason[var] is None or not (
                    abstract_levels >> (level[var] & 31) & 1
                ):
                    # A decision or a variable at a level foreign to the
                    # clause: the chain fails.  Un-mark what this walk
                    # added (marks made by *successful* walks stay).
                    for q2 in to_clear[top:]:
                        seen[q2 >> 1] = 0
                    del to_clear[top:]
                    return False
                seen[var] = 1
                to_clear.append(q)
                stack.append(q)
        return True

    def _reduce_db(self) -> None:
        """Drop the weaker half of the learned clauses."""
        locked = {id(r) for r in self._reason if r is not None}
        scored = []
        for clause in self._learnts:
            key = id(clause)
            if key in locked or len(clause) <= 2:
                continue
            scored.append(
                (self._clause_lbd.get(key, 99), -self._clause_act.get(key, 0.0), key, clause)
            )
        scored.sort()
        drop = {entry[2] for entry in scored[len(scored) // 2 :]}
        if not drop:
            return
        kept: list[list[int]] = []
        for clause in self._learnts:
            if id(clause) in drop:
                self._detach(clause)
                self._log_proof("d", clause)
                self._clause_act.pop(id(clause), None)
                self._clause_lbd.pop(id(clause), None)
                self.stats.deleted += 1
            else:
                kept.append(clause)
        self._learnts = kept

    def _detach(self, clause: list[int]) -> None:
        for watch_lit in (clause[0], clause[1]):
            lst = self._watches[watch_lit]
            for i, c in enumerate(lst):
                if c is clause:
                    lst[i] = lst[-1]
                    lst.pop()
                    break

    def _pick_branch_var(self) -> Optional[int]:
        """Highest-activity unassigned variable via a lazy heap.

        Heap entries may be stale (old activities, already-assigned vars);
        stale entries are skipped on pop.  Every unassigned variable always
        has at least one live entry because bumps and unassignments push.
        """
        heap = self._heap
        assign = self._assign
        while heap:
            _, var = heapq.heappop(heap)
            if assign[var] == _UNASSIGNED:
                return var
        # Heap drained: fall back to a scan (rare; e.g. fresh vars only).
        for var in range(self._nvars):
            if assign[var] == _UNASSIGNED:
                return var
        return None

    def _analyze_final(self, lit: int) -> list[int]:
        """Assumptions (external lits) forcing ``lit`` false — MiniSat's
        analyzeFinal.  Walks implication ancestry from the trail top; every
        decision met is an assumption (only assumptions are decisions while
        the assumption prefix is being installed)."""
        core = {self._to_external(lit)}
        if self._decision_level() == 0:
            return sorted(core, key=abs)
        seen = self._seen
        seen[lit >> 1] = 1
        for trail_lit in reversed(self._trail[self._trail_lim[0] :]):
            var = trail_lit >> 1
            if not seen[var]:
                continue
            reason = self._reason[var]
            if reason is None:
                core.add(self._to_external(trail_lit))
            else:
                for q in reason[1:]:
                    if self._level[q >> 1] > 0:
                        seen[q >> 1] = 1
            seen[var] = 0
        seen[lit >> 1] = 0
        return sorted(core, key=abs)

    def _solve(
        self,
        assumptions: Sequence[int],
        start: float,
        max_conflicts: Optional[int],
        max_time: Optional[float],
    ) -> SolveResult:
        if not self.ok:
            return SolveResult("unsat", stats=self.stats, core=[])
        self._ensure_vars(assumptions)
        conflict = self._propagate()
        if conflict is not None:
            self._log_proof("a", [])
            self.ok = False
            return SolveResult("unsat", stats=self.stats, core=[])

        assum = [self._to_internal(a) for a in assumptions]
        cfg = self.config
        conflicts_start = self.stats.conflicts
        restart_idx = 1
        restart_limit = cfg.restart_limit(restart_idx)
        conflicts_since_restart = 0
        # With the default config (reduce_base=1000) this is the
        # historical ``max(1000, len(clauses) // 3 + 500)`` schedule.
        max_learnts = max(
            cfg.reduce_base,
            (len(self._clauses) // 3) + cfg.reduce_base // 2,
        )

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level() == 0:
                    self._log_proof("a", [])
                    self.ok = False
                    return SolveResult("unsat", stats=self.stats, core=[])
                learnt, bt_level, lbd = self._analyze(conflict)
                self._log_proof("a", learnt)
                self._backtrack(bt_level)
                if len(learnt) == 1:
                    if not self._enqueue(learnt[0], None):
                        self._log_proof("a", [])
                        self.ok = False
                        return SolveResult("unsat", stats=self.stats, core=[])
                else:
                    clause = self._attach(learnt, learnt=True)
                    self._clause_lbd[id(clause)] = lbd
                    assert self._enqueue(learnt[0], clause)
                self._var_inc /= self._var_decay
                self._cla_inc /= self._cla_decay

                if (
                    max_conflicts is not None
                    and self.stats.conflicts - conflicts_start >= max_conflicts
                ):
                    self._backtrack(0)
                    return SolveResult("unknown", stats=self.stats)
                if max_time is not None and (
                    time.monotonic() - start
                ) > max_time:
                    self._backtrack(0)
                    return SolveResult("unknown", stats=self.stats)
                if conflicts_since_restart >= restart_limit:
                    self.stats.restarts += 1
                    restart_idx += 1
                    restart_limit = cfg.restart_limit(restart_idx)
                    conflicts_since_restart = 0
                    self._backtrack(0)
                continue

            if len(self._learnts) >= max_learnts:
                self._reduce_db()
                max_learnts = int(max_learnts * cfg.reduce_growth)

            # Take pending assumptions as forced decisions first.
            next_lit: Optional[int] = None
            if self._decision_level() < len(assum):
                candidate = assum[self._decision_level()]
                val = self._lit_value(candidate)
                if val == 0:
                    core = self._analyze_final(candidate)
                    self._backtrack(0)
                    return SolveResult("unsat", stats=self.stats, core=core)
                if val == 1:
                    # Already satisfied: open an empty decision level so the
                    # remaining assumptions keep their positions.
                    self._trail_lim.append(len(self._trail))
                    continue
                next_lit = candidate
            if next_lit is None:
                var = self._pick_branch_var()
                if var is None:
                    model = [self._assign[v] == 1 for v in range(self._nvars)]
                    self._backtrack(0)
                    return SolveResult("sat", model=model, stats=self.stats)
                next_lit = var * 2 + (1 if self._phase[var] == 0 else 0)
            self._decide(next_lit)
