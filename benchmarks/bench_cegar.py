"""Ablation: eager (paper) vs lazy (CEGAR) LM solving.

The paper's encoding instantiates every truth-table entry's constraint
block up front; the CEGAR extension adds blocks only when a candidate
mapping actually violates the corresponding entries.  This bench
measures both on the same LM instances and records the clause counts —
the lazy solver's whole point is the smaller formula it ends up
needing.
"""

from __future__ import annotations

import pytest

from repro.core import EncodeOptions, make_spec, solve_lm, solve_lm_cegar
from repro.core.janus import JanusOptions

INSTANCES = [
    ("fig4-opt", "cd + c'd' + abe + a'b'e'", 3, 4),     # SAT at the optimum
    ("fig4-below", "cd + c'd' + abe + a'b'e'", 3, 3),   # UNSAT below it
    ("sparse-sat", "ab + cd + ef", 3, 3),               # easy SAT, 6 inputs
    ("fig1-unsat", "abcd + a'b'c'd'", 3, 3),            # the Fig. 1 refutation
]


@pytest.mark.parametrize("case", INSTANCES, ids=lambda c: c[0])
@pytest.mark.parametrize("engine", ["eager", "cegar"])
def bench_cegar_vs_eager(benchmark, case, engine):
    name, expression, rows, cols = case
    spec = make_spec(expression, name=name)

    if engine == "eager":
        def run():
            outcome = solve_lm(
                spec, rows, cols, JanusOptions(max_conflicts=400_000)
            )
            assert outcome.status in ("sat", "unsat")
            return outcome.status, outcome.attempt.complexity
    else:
        def run():
            outcome = solve_lm_cegar(
                spec, rows, cols, EncodeOptions(), max_conflicts=400_000
            )
            assert outcome.status in ("sat", "unsat")
            return outcome.status, outcome.stats.clauses

    status, size = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info["status"] = status
    # clauses for cegar; vars*clauses complexity for eager — both sizes.
    benchmark.extra_info["size"] = size
