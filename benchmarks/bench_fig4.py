"""Fig. 4: the six upper-bound constructions on the worked example.

The paper reports DP 6x4, PS 3x7, DPS 11x4, IPS 3x5, IDPS 8x4, DS 3x5, a
lower bound of 12 and a 3x4 optimum.  Every benchmark asserts its
published shape.
"""

from __future__ import annotations

import pytest

from repro.bench.tables import (
    FIG4_FUNCTION,
    FIG4_PAPER_BOUNDS,
    FIG4_PAPER_LB,
)
from repro.core import (
    TargetSpec,
    structural_lower_bound,
    synthesize,
    ub_ds,
)
from repro.core.bounds import UB_METHODS


@pytest.fixture(scope="module")
def spec():
    return TargetSpec.from_string(FIG4_FUNCTION, name="fig4")


@pytest.mark.parametrize("method", ["dp", "ps", "dps", "ips", "idps"])
def bench_fig4_bound(benchmark, spec, method):
    result = benchmark.pedantic(
        UB_METHODS[method], args=(spec,), rounds=1, iterations=1
    )
    benchmark.extra_info["shape"] = f"{result.rows}x{result.cols}"
    assert (result.rows, result.cols) == FIG4_PAPER_BOUNDS[method]
    assert result.assignment.realizes(spec.tt)


def bench_fig4_ds_bound(benchmark, spec, options):
    result = benchmark.pedantic(
        ub_ds, args=(spec, options), rounds=1, iterations=1
    )
    benchmark.extra_info["shape"] = f"{result.rows}x{result.cols}"
    assert (result.rows, result.cols) == FIG4_PAPER_BOUNDS["ds"]


def bench_fig4_lower_bound(benchmark, spec):
    lb = benchmark.pedantic(
        structural_lower_bound, args=(spec,), rounds=1, iterations=1
    )
    assert lb == FIG4_PAPER_LB


def bench_fig4_janus_optimum(benchmark, spec, options):
    result = benchmark.pedantic(
        synthesize, args=(spec,), kwargs={"options": options}, rounds=1, iterations=1
    )
    benchmark.extra_info["shape"] = result.shape
    benchmark.extra_info["initial_ub"] = result.initial_upper_bound
    assert result.size == 12
    assert result.initial_upper_bound == 15
