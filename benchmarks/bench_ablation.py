"""Ablations of JANUS's design choices (DESIGN.md section 3).

The paper asserts several design decisions without isolating them; these
benchmarks measure each:

* **encoding side** — solve the same LM instance with the primal
  encoding, the dual encoding, and the paper's pick-the-cheaper rule;
* **degree constraints** — the third encoding step on vs off;
* **row facts** — the 1-entry path facts on vs off;
* **bounds** — dichotomic search starting from the old (DP/PS/DPS)
  versus the new (IPS/IDPS/DS) upper bounds: the paper credits the new
  bounds with a 42.8% smaller search space;
* **exactly-one encoding** — pairwise (the paper's) vs sequential vs
  commander on a representative LM instance.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.bench.instances import build_instance
from repro.core import EncodeOptions, JanusOptions, encode_lm, synthesize
from repro.sat import solve_cnf

INSTANCE = "misex1_01"  # 6 inputs, 5 products, degree 4
SHAPE = (3, 5)  # the paper's published JANUS solution shape for it


@pytest.fixture(scope="module")
def spec():
    return build_instance(INSTANCE)


@pytest.mark.parametrize("side", ["primal", "dual"])
def bench_ablation_encoding_side(benchmark, spec, side):
    def run():
        enc = encode_lm(spec, *SHAPE, side=side)
        result = solve_cnf(enc.cnf, max_conflicts=100_000)
        return enc, result

    enc, result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        status=result.status,
        vars=enc.cnf.num_vars,
        clauses=enc.cnf.num_clauses,
        complexity=enc.complexity,
        conflicts=result.stats.conflicts,
    )


@pytest.mark.parametrize("flag", [True, False], ids=["on", "off"])
def bench_ablation_degree_constraints(benchmark, spec, flag):
    def run():
        enc = encode_lm(
            spec, *SHAPE, side="primal",
            options=EncodeOptions(degree_constraints=flag),
        )
        return enc, solve_cnf(enc.cnf, max_conflicts=100_000)

    enc, result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        status=result.status, clauses=enc.cnf.num_clauses,
        conflicts=result.stats.conflicts,
    )


@pytest.mark.parametrize("flag", [True, False], ids=["on", "off"])
def bench_ablation_row_facts(benchmark, spec, flag):
    def run():
        enc = encode_lm(
            spec, *SHAPE, side="primal", options=EncodeOptions(row_facts=flag)
        )
        return enc, solve_cnf(enc.cnf, max_conflicts=100_000)

    enc, result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        status=result.status, clauses=enc.cnf.num_clauses,
        conflicts=result.stats.conflicts,
    )


@pytest.mark.parametrize(
    "methods",
    [("dp", "ps", "dps"), ("dp", "ps", "dps", "ips", "idps", "ds")],
    ids=["old-bounds", "new-bounds"],
)
def bench_ablation_bounds_search_space(benchmark, spec, options, methods):
    opts = replace(options, ub_methods=methods)
    result = benchmark.pedantic(
        synthesize, args=(spec,), kwargs={"options": opts}, rounds=1, iterations=1
    )
    benchmark.extra_info.update(
        initial_ub=result.initial_upper_bound,
        lm_probes=len(result.attempts),
        size=result.size,
    )
    assert result.size <= result.initial_upper_bound


@pytest.mark.parametrize("method", ["pairwise", "sequential", "commander"])
def bench_ablation_exactly_one(benchmark, spec, method):
    def run():
        enc = encode_lm(
            spec, *SHAPE, side="primal", options=EncodeOptions(eo_method=method)
        )
        return enc, solve_cnf(enc.cnf, max_conflicts=100_000)

    enc, result = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(
        status=result.status, vars=enc.cnf.num_vars,
        clauses=enc.cnf.num_clauses,
    )
